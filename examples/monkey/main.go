// Monkey and bananas: the classic OPS5 means-ends planning program. The
// monkey must walk to the ladder, push it under the bananas, climb, and
// grab — each step a production firing, the whole plan emerging from the
// recognize-act cycle (§2.1) with rule-order priority as the conflict
// resolution strategy.
package main

import (
	"fmt"
	"log"
	"os"

	"prodsys"
)

const program = `
(literalize Monkey at on holds)
(literalize Thing name at)
(literalize Goal want status)

; Terminal: the goal is satisfied.
(p done
    (Goal ^want bananas ^status active)
    (Monkey ^holds bananas)
  -->
    (modify 1 ^status satisfied)
    (write the monkey is holding the bananas)
    (halt))

; On the ladder under the bananas: grab them.
(p grab
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on ladder ^holds nothing)
    (Thing ^name bananas ^at <p>)
  -->
    (modify 2 ^holds bananas)
    (write grab the bananas at <p>))

; Ladder and bananas in the same place, monkey on the floor there: climb.
(p climb
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on floor)
    (Thing ^name ladder ^at <p>)
    (Thing ^name bananas ^at <p>)
  -->
    (modify 2 ^on ladder)
    (write climb the ladder at <p>))

; Monkey at the ladder but bananas elsewhere: push the ladder there.
(p push-ladder
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on floor ^holds nothing)
    (Thing ^name ladder ^at <p>)
    (Thing ^name bananas ^at {<b> <> <p>})
  -->
    (modify 2 ^at <b>)
    (modify 3 ^at <b>)
    (write push the ladder from <p> to <b>))

; Monkey away from the ladder: walk to it.
(p walk-to-ladder
    (Goal ^want bananas ^status active)
    (Monkey ^at <p> ^on floor)
    (Thing ^name ladder ^at {<q> <> <p>})
  -->
    (modify 2 ^at <q>)
    (write walk from <p> to <q>))

; Initial state: monkey in the corner, ladder by the window, bananas at
; the centre of the room.
(Monkey corner floor nothing)
(Thing ladder window)
(Thing bananas centre)
(Goal bananas active)
`

func main() {
	sys, err := prodsys.Load(program, prodsys.Options{
		Strategy: "priority", // rule order encodes the means-ends preference
		Out:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:")
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolved in %d firings (halted=%v)\n\nfinal state:\n%s\n", res.Firings, res.Halted, sys.WM())
}
