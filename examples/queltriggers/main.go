// Queltriggers: the paper's §2.3 QUEL scenario, executable as written.
// An ALWAYS-tagged replace command becomes a trigger — compiled into a
// production and maintained by the match machinery — so Mike's salary
// tracks Sam's through every subsequent update.
package main

import (
	"fmt"
	"log"
	"os"

	"prodsys"
)

const script = `
create Emp (name, salary, dno)
create Dept (dno, dname, floor)
range of E is Emp
range of D is Dept

# "a trigger that forces Mike's salary to always be equal to Sam's
#  salary" (paper §2.3):
replace ALWAYS Emp (salary = E.salary)
    where Emp.name = "Mike" and E.name = "Sam"

# Rogue rows are purged on sight.
delete ALWAYS E where E.salary < 0

append to Dept (dno = 1, dname = "Toy", floor = 1)
append to Emp (name = "Sam",  salary = 900, dno = 1)
append to Emp (name = "Mike", salary = 500, dno = 1)
append to Emp (name = "Ann",  salary = 800, dno = 1)
`

func main() {
	sys, err := prodsys.LoadQuel(script, "", prodsys.Options{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	show := func(when string) {
		r, err := sys.Quel(`retrieve (E.name, E.salary)`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", when)
		for _, row := range r.Rows {
			fmt.Printf("    %-6s %s\n", row[0], row[1])
		}
	}

	show("after loading (the trigger already equalized Mike to Sam)")

	fmt.Println("\n>> replace E (salary = 1000) where E.name = \"Sam\"")
	upd, err := sys.Quel(`replace E (salary = 1000) where E.name = "Sam"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d tuple(s) replaced, %d trigger firing(s)\n\n", upd.Affected, upd.Fired)
	show("after Sam's raise")

	fmt.Println("\n>> append to Emp (name = \"Oops\", salary = -50, dno = 1)")
	upd, err = sys.Quel(`append to Emp (name = "Oops", salary = -50, dno = 1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   appended, %d trigger firing(s) (the delete ALWAYS purged it)\n\n", upd.Fired)
	show("after the rogue insert")
}
