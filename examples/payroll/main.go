// Payroll: rules as triggers and materialized views over a small
// employee database — the DBMS use case motivating the paper (§2.3).
//
// A salary-equalization trigger in the style of Stonebraker's ALWAYS
// command keeps Mike's salary equal to Sam's, and a materialized view of
// Toy-department staff is maintained incrementally through every update,
// including the updates made by the trigger itself.
package main

import (
	"fmt"
	"log"

	"prodsys"
)

const program = `
(literalize Emp name salary dno)
(literalize Dept dno dname floor)

; "replace ALWAYS EMP (salary = E.salary) where EMP.name = 'Mike' and
;  E.name = 'Sam'" (§2.3) — as a production: whenever Mike's salary
; differs from Sam's, overwrite it.
(p mike-follows-sam
    (Emp ^name Sam ^salary <S>)
    (Emp ^name Mike ^salary <> <S>)
  -->
    (write trigger: setting Mike to <S>)
    (modify 2 ^salary <S>))

(Dept 1 Toy 1)
(Dept 2 Shoe 2)
(Emp Mike 1000 1)
(Emp Sam  1000 2)
(Emp Ann   800 1)
`

const views = `
(literalize Emp name salary dno)
(literalize Dept dno dname floor)

; Toy-department staff: maintained via add/delete triggers (Buneman &
; Clemons, §2.3).
(p toy-staff
    (Emp ^name <n> ^salary <s> ^dno <d>)
    (Dept ^dno <d> ^dname Toy)
  -->)
`

func main() {
	sys, err := prodsys.Load(program, prodsys.Options{})
	if err != nil {
		log.Fatal(err)
	}
	vs, err := sys.AttachViews(views)
	if err != nil {
		log.Fatal(err)
	}

	show := func(when string) {
		rows, _ := vs.Rows("toy-staff")
		fmt.Printf("%s — toy-staff view (%d rows):\n", when, len(rows))
		for _, r := range rows {
			fmt.Println("   ", r)
		}
	}

	show("initially")

	// Update Sam's salary the way a user transaction would: the trigger
	// fires and propagates to Mike; the view follows automatically.
	fmt.Println("\n>> replace Emp (salary = 1200) where Emp.name = 'Sam'")
	for _, row := range sys.WMClass("Emp") {
		fmt.Println("   before:", row)
	}
	// Find and replace Sam (a real driver would use a query API; the
	// example keeps it explicit).
	if err := sys.Retract("Emp", 2); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Assert("Emp", "Sam", 1200, 2); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run() // awaken triggers
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   trigger fired %d time(s)\n", res.Firings)
	for _, row := range sys.WMClass("Emp") {
		fmt.Println("   after: ", row)
	}
	show("\nafter the update")

	// Move Ann out of the Toy department: the view row disappears.
	fmt.Println("\n>> Ann transfers to Shoe")
	if err := sys.Retract("Emp", 3); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Assert("Emp", "Ann", 800, 2); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	show("after the transfer")
}
