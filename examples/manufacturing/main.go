// Manufacturing: a forward-chaining job-shop where orders advance
// through cutting, drilling and polishing — the "engineering processes,
// manufacturing" applications the paper's introduction motivates. The
// same program runs serially (OPS5 semantics) and concurrently
// (transactions under two-phase locking, §5), and the example verifies
// both reach the same final state.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"prodsys"
)

const rules = `
(literalize Order id stage)
(literalize Station name free)
(literalize Log id stage)

(p start-cut
    (Order ^id <o> ^stage new)
    (Station ^name cutter ^free yes)
  -->
    (modify 1 ^stage cut)
    (make Log ^id <o> ^stage cut))

(p cut-to-drill
    (Order ^id <o> ^stage cut)
    (Station ^name drill ^free yes)
  -->
    (modify 1 ^stage drilled)
    (make Log ^id <o> ^stage drilled))

(p drill-to-polish
    (Order ^id <o> ^stage drilled)
    (Station ^name polisher ^free yes)
  -->
    (modify 1 ^stage done)
    (make Log ^id <o> ^stage done))

(Station cutter yes)
(Station drill yes)
(Station polisher yes)
`

const orders = 12

func build() *prodsys.System {
	sys, err := prodsys.Load(rules, prodsys.Options{Workers: 8, Out: io.Discard})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < orders; i++ {
		if _, err := sys.Assert("Order", i, "new"); err != nil {
			log.Fatal(err)
		}
	}
	return sys
}

func doneCount(sys *prodsys.System) int {
	n := 0
	for _, row := range sys.WMClass("Order") {
		if strings.Contains(row, "done") {
			n++
		}
	}
	return n
}

func main() {
	// Serial OPS5-style execution: one firing per cycle.
	serial := build()
	sres, err := serial.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial:     %d firings, %d cycles, %d/%d orders done\n",
		sres.Firings, sres.Cycles, doneCount(serial), orders)

	// Concurrent execution: each applicable instantiation is a
	// transaction; the conflict set drains in rounds (§5.2).
	conc := build()
	cres, err := conc.RunConcurrent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concurrent: %d firings, %d rounds, %d aborts, %d/%d orders done\n",
		cres.Firings, cres.Cycles, cres.Aborts, doneCount(conc), orders)

	if serial.WM() == conc.WM() {
		fmt.Println("\nfinal states are identical — the concurrent schedule is")
		fmt.Println("equivalent to the serial one, as §5.2 requires.")
	} else {
		fmt.Println("\nSTATES DIVERGED — serializability violated!")
	}

	fmt.Println("\nproduction log of the concurrent run:")
	for _, row := range conc.WMClass("Log") {
		fmt.Println("   ", row)
	}
	fmt.Println("\nexecution statistics (concurrent run):")
	fmt.Print(prodsys.FormatStats(conc.Metrics().Counters, "txn_", "lock", "serial_ops", "rule_"))
}
