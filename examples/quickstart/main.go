// Quickstart: load an OPS5-subset production program, run the
// recognize-act cycle, and inspect working memory — the "Mike earns more
// than his manager" rule of the paper's Example 3.
package main

import (
	"fmt"
	"log"

	"prodsys"
)

const program = `
; Working-memory classes (the paper's literalize declarations, §3.2).
(literalize Emp name salary manager)

; Delete any employee who earns more than their manager (Example 3, R1).
(p overpaid
    (Emp ^name <N> ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (write firing: <N> earns <S> but manager <M> earns <S1>)
    (remove 1))

; Initial facts.
(Emp Mike 1000 Sam)
(Emp Sam   900 Pat)
(Emp Pat  2000 none)
`

func main() {
	// The default matcher is the paper's matching-pattern algorithm
	// (§4.2); try prodsys.MatcherRete or prodsys.MatcherRequery to swap
	// algorithms without changing anything else.
	sys, err := prodsys.Load(program, prodsys.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("conflict set before running:", sys.ConflictKeys())

	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fired %d rule(s) in %d cycle(s)\n\n", res.Firings, res.Cycles)

	fmt.Println("final working memory:")
	fmt.Println(sys.WM())

	fmt.Println("\nmatch statistics:")
	fmt.Print(prodsys.FormatStats(sys.Metrics().Counters, "pattern", "rule_", "tuples_"))
}
