// Rulequery: querying the rulebase itself through the Predicate Indexing
// R-tree — the paper's example "give me all the rules that apply on
// employees older than 55" (§4.2.3), which schemes storing rule
// information with the data (POSTGRES markers) cannot answer.
package main

import (
	"fmt"
	"io"
	"log"

	"prodsys"
)

const program = `
(literalize Emp name age salary dno)
(literalize Dept dno dname)

(p retirement-planning (Emp ^age > 55) --> (halt))
(p early-career        (Emp ^age < 30 ^salary < 3000) --> (halt))
(p mid-band            (Emp ^age > 40 ^age < 50) --> (halt))
(p toy-audit           (Emp ^dno <d>) (Dept ^dno <d> ^dname Toy) --> (halt))
(p high-earners        (Emp ^salary > 9000) --> (halt))
`

func main() {
	sys, err := prodsys.Load(program, prodsys.Options{
		Matcher: prodsys.MatcherPTree,
		Out:     io.Discard,
	})
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		desc        string
		class, attr string
		lo, hi      any
	}{
		{"rules that apply on employees older than 55", "Emp", "age", 55, nil},
		{"rules touching ages 41..49", "Emp", "age", 41, 49},
		{"rules touching salaries above 8000", "Emp", "salary", 8000, nil},
		{"rules touching any employee age", "Emp", "age", nil, nil},
	}
	for _, q := range queries {
		names, err := sys.RulebaseQuery(q.class, q.attr, q.lo, q.hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", q.desc)
		for _, n := range names {
			fmt.Println("   ", n)
		}
		fmt.Println()
	}
	fmt.Println("note: rules without a constant restriction on the queried")
	fmt.Println("attribute (toy-audit, and high-earners on age) match every")
	fmt.Println("range — their condition rectangle is unbounded there.")
}
