package prodsys_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"prodsys"
	"prodsys/internal/faultfs"
	repl "prodsys/internal/replica"
)

// replSrc mixes pure data (Elem), rule-consumed data (Job), and
// rule-produced data (Done), so shipped units exercise asserts,
// retracts, and firing keys (refraction state) through every matcher's
// maintenance path.
const replSrc = `
(literalize Job id state)
(literalize Done id)
(literalize Elem x)

(p finish
    (Job ^id <i> ^state ready)
  -->
    (modify 1 ^state done)
    (make Done ^id <i>))
`

// fingerprint is the byte-comparable observable state: canonical WM
// dump plus sorted conflict-set keys.
func fingerprint(s *prodsys.System) (string, string) {
	keys := s.ConflictKeys()
	sort.Strings(keys)
	return s.WM(), strings.Join(keys, "\n")
}

func waitCaughtUp(t *testing.T, pri, sec *prodsys.System) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		pe, po, _ := pri.WALPosition()
		re, ro, _ := sec.WALPosition()
		if pe == re && po == ro {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %d:%d, primary %d:%d", re, ro, pe, po)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationAllMatchers ships a live workload from a primary to a
// warm replica over the real feed protocol (HTTP stream, frame
// decoding, raw-byte mirroring, matcher-maintenance apply) and asserts
// the replica's working memory AND conflict set are byte-identical to
// the primary's — for all seven matching algorithms. It then promotes
// the replica: the audit gate must pass, the epoch must bump, and the
// node must accept writes.
func TestReplicationAllMatchers(t *testing.T) {
	for _, m := range prodsys.Matchers() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			t.Parallel()
			pri, err := prodsys.Load(replSrc, prodsys.Options{
				Matcher: m, Out: io.Discard, WALPath: "p.wal", WALFS: faultfs.New(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pri.Close()

			done := make(chan struct{})
			mux := http.NewServeMux()
			mux.HandleFunc("GET /v1/wal", func(w http.ResponseWriter, r *http.Request) {
				repl.ServeFeed(w, r, repl.FeedConfig{
					Log:       pri.WALLog(),
					Poll:      2 * time.Millisecond,
					Heartbeat: 20 * time.Millisecond,
					Done:      done,
				})
			})
			ts := httptest.NewServer(mux)
			defer ts.Close()
			defer close(done)

			sec, err := prodsys.Load(replSrc, prodsys.Options{
				Matcher: m, Out: io.Discard, WALPath: "r.wal", WALFS: faultfs.New(),
				ReplicaOf: ts.URL,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sec.Close()

			// A replica refuses writes with the typed error naming the mode.
			if _, err := sec.Batch().Assert("Elem", 0).Commit(); !errors.Is(err, prodsys.ErrReplica) {
				t.Fatalf("replica accepted a write: %v", err)
			}

			client := repl.NewClient(sec, ts.URL)
			client.Start()
			stopped := false
			defer func() {
				if !stopped {
					client.Stop()
				}
			}()

			// Drive the primary: asserts, retracts, and rule firings.
			var elems []uint64
			for i := 1; i <= 25; i++ {
				ids, err := pri.Batch().
					Assert("Job", i, "ready").
					Assert("Elem", i%4).
					Commit()
				if err != nil {
					t.Fatal(err)
				}
				elems = append(elems, ids[1])
				if i%3 == 0 {
					if _, err := pri.Batch().Retract("Elem", elems[0]).Commit(); err != nil {
						t.Fatal(err)
					}
					elems = elems[1:]
				}
				if i%5 == 0 {
					if _, err := pri.Run(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Leave unfired instantiations pending so the conflict-set
			// comparison below is not vacuous.
			if _, err := pri.Batch().Assert("Job", 100, "ready").Assert("Job", 101, "ready").Commit(); err != nil {
				t.Fatal(err)
			}

			waitCaughtUp(t, pri, sec)

			pwm, pkeys := fingerprint(pri)
			rwm, rkeys := fingerprint(sec)
			if pwm != rwm {
				t.Fatalf("working memories diverge\nprimary:\n%s\nreplica:\n%s", pwm, rwm)
			}
			if pkeys != rkeys {
				t.Fatalf("conflict sets diverge\nprimary:\n%s\nreplica:\n%s", pkeys, rkeys)
			}
			if pkeys == "" {
				t.Fatal("conflict-set comparison is vacuous: no pending instantiations")
			}
			if n := sec.Metrics().Replication.TxnsApplied; n == 0 {
				t.Fatal("replica applied no transactions")
			}

			// Promotion: feed stopped, tail truncated, audit gate passed,
			// epoch bumped, writes open.
			client.Stop()
			stopped = true
			pe, _, _ := pri.WALPosition()
			rep, err := sec.Promote()
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			if rep == nil || !rep.Clean() {
				t.Fatalf("promotion gate report not clean: %+v", rep)
			}
			if sec.IsReplica() || sec.ReplicaOf() != "" {
				t.Fatal("promoted node still reports replica mode")
			}
			ne, _, _ := sec.WALPosition()
			if ne != pe+1 {
				t.Fatalf("promoted epoch = %d, want %d (fencing token must advance)", ne, pe+1)
			}
			if _, err := sec.Batch().Assert("Elem", 9).Commit(); err != nil {
				t.Fatalf("promoted node refused a write: %v", err)
			}
			if _, err := sec.Promote(); !errors.Is(err, prodsys.ErrNotReplica) {
				t.Fatalf("second promote: %v, want ErrNotReplica", err)
			}
		})
	}
}
