package prodsys

import (
	"errors"
	"io"
	"strings"
	"testing"
)

const batchSrc = `
(literalize Emp name salary dno)
(literalize Dept dno dname)

(p staffed
    (Emp ^dno <d>)
    (Dept ^dno <d>)
  --> (halt))
`

func TestBatchCommit(t *testing.T) {
	for _, m := range Matchers() {
		t.Run(string(m), func(t *testing.T) {
			sys, err := Load(batchSrc, Options{Matcher: m, Out: io.Discard})
			if err != nil {
				t.Fatal(err)
			}
			ids, err := sys.Batch().
				Assert("Emp", "Ann", 100, 7).
				Assert("Emp", "Bob", 200, 7).
				Assert("Dept", 7, "Toy").
				Commit()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 3 {
				t.Fatalf("ids = %v", ids)
			}
			for i, id := range ids {
				if id == 0 {
					t.Fatalf("op %d: no tuple ID assigned", i)
				}
			}
			if keys := sys.ConflictKeys(); len(keys) != 2 {
				t.Fatalf("conflict keys = %v", keys)
			}
			// Retraction positions report zero; the join dissolves.
			ids2, err := sys.Batch().Retract("Dept", ids[2]).Commit()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids2) != 1 || ids2[0] != 0 {
				t.Fatalf("retract ids = %v", ids2)
			}
			if keys := sys.ConflictKeys(); len(keys) != 0 {
				t.Fatalf("conflict keys after retract = %v", keys)
			}
		})
	}
}

func TestBatchNetZero(t *testing.T) {
	for _, m := range Matchers() {
		t.Run(string(m), func(t *testing.T) {
			sys, err := Load(batchSrc, Options{Matcher: m, Out: io.Discard})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Assert("Dept", 7, "Toy"); err != nil {
				t.Fatal(err)
			}
			// An Emp born and retracted within one batch must never
			// reach the matcher.
			b := sys.Batch().Assert("Emp", "Tmp", 1, 7)
			b.Retract("Emp", 1) // first Emp ID is 1
			if _, err := b.Commit(); err != nil {
				t.Fatal(err)
			}
			if keys := sys.ConflictKeys(); len(keys) != 0 {
				t.Fatalf("net-zero tuple matched: %v", keys)
			}
			if strings.Contains(sys.WM(), "Tmp") {
				t.Fatalf("net-zero tuple in WM:\n%s", sys.WM())
			}
		})
	}
}

func TestBatchBuildErrors(t *testing.T) {
	sys, err := Load(batchSrc, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	// A build error poisons the batch; nothing applies at Commit.
	if _, err := sys.Batch().Assert("Ghost", 1).Assert("Dept", 7, "Toy").Commit(); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("want ErrUnknownClass, got %v", err)
	}
	if got := sys.WMClass("Dept"); got != nil {
		t.Fatalf("poisoned batch applied ops: %v", got)
	}
	if _, err := sys.Batch().Assert("Dept", 1, 2, 3).Commit(); !errors.Is(err, ErrArity) {
		t.Errorf("want ErrArity, got %v", err)
	}
	if _, err := sys.Assert("Ghost", 1); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("single-op assert: want ErrUnknownClass, got %v", err)
	}
	if b := sys.Batch().Assert("Emp", "Ann", 1, 7); b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
	// An empty batch is a no-op.
	if ids, err := sys.Batch().Commit(); err != nil || len(ids) != 0 {
		t.Fatalf("empty batch: ids=%v err=%v", ids, err)
	}
	// A batch commits at most once.
	b2 := sys.Batch().Assert("Dept", 7, "Toy")
	if _, err := b2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Commit(); err == nil {
		t.Error("second Commit should fail")
	}
	if _, err := b2.Assert("Dept", 8, "Shoe").Commit(); err == nil {
		t.Error("Assert after Commit should fail")
	}
	if got := sys.WMClass("Dept"); len(got) != 1 {
		t.Fatalf("reused batch applied ops: %v", got)
	}
}

func TestBatchCounters(t *testing.T) {
	sys, err := Load(batchSrc, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Batch().
		Assert("Emp", "Ann", 100, 7).
		Assert("Emp", "Bob", 200, 7).
		Assert("Dept", 7, "Toy").
		Commit(); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.Batch.Deltas != 1 {
		t.Errorf("Batch.Deltas = %d", m.Batch.Deltas)
	}
	if m.Batch.Tuples != 3 {
		t.Errorf("Batch.Tuples = %d", m.Batch.Tuples)
	}
	// Two classes, inserts only: one propagation group per class.
	if m.Batch.Propagations != 2 {
		t.Errorf("Batch.Propagations = %d", m.Batch.Propagations)
	}
	// The whole batch was one run of same-class assertions per class:
	// two bulk storage inserts, visible through the storage metrics.
	if m.Storage.BatchInserts != 2 {
		t.Errorf("Storage.BatchInserts = %d", m.Storage.BatchInserts)
	}
}

func TestBatchWithViews(t *testing.T) {
	sys, err := Load(batchSrc, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	views, err := sys.AttachViews(`
(literalize Emp name salary dno)
(literalize Dept dno dname)
(p staff (Emp ^name <n> ^dno <d>) (Dept ^dno <d> ^dname <m>) -->)`)
	if err != nil {
		t.Fatal(err)
	}
	// With an observer attached the batch degrades to per-op
	// application; the view must still track exactly.
	if _, err := sys.Batch().
		Assert("Emp", "Ann", 100, 7).
		Assert("Dept", 7, "Toy").
		Assert("Emp", "Bob", 200, 7).
		Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := views.Len("staff"); n != 2 {
		rows, _ := views.Rows("staff")
		t.Fatalf("view size = %d: %v", n, rows)
	}
}
