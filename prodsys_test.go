package prodsys

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

const payrollSrc = `
(literalize Emp name salary dno manager)
(literalize Dept dno dname floor)

(p overpaid
    (Emp ^name <N> ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
  -->
    (remove 1))

(Emp Mike 1000 1 Sam)
(Emp Sam 900 1 Pat)
(Emp Pat 2000 1 nobody)
`

func TestLoadAndRunEveryMatcher(t *testing.T) {
	for _, m := range Matchers() {
		t.Run(string(m), func(t *testing.T) {
			sys, err := Load(payrollSrc, Options{Matcher: m, Out: io.Discard})
			if err != nil {
				t.Fatal(err)
			}
			if sys.MatcherName() != string(m) {
				t.Errorf("MatcherName = %q", sys.MatcherName())
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Firings != 1 {
				t.Fatalf("firings = %d", res.Firings)
			}
			if strings.Contains(sys.WM(), "Mike") {
				t.Fatalf("Mike should be gone:\n%s", sys.WM())
			}
		})
	}
}

func TestAssertRetractAndConflictKeys(t *testing.T) {
	sys, err := Load(`
(literalize A x y)
(p pair (A ^x <v> ^y <v>) --> (halt))`, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	id, err := sys.Assert("A", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if keys := sys.ConflictKeys(); len(keys) != 1 {
		t.Fatalf("keys = %v", keys)
	}
	if err := sys.Retract("A", id); err != nil {
		t.Fatal(err)
	}
	if keys := sys.ConflictKeys(); len(keys) != 0 {
		t.Fatalf("keys after retract = %v", keys)
	}
	// Partial assert leaves trailing attributes unset.
	if _, err := sys.Assert("A", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Assert("A", 1, 2, 3); err == nil {
		t.Error("too many values should fail")
	}
	if _, err := sys.Assert("Ghost", 1); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := sys.Assert("A", struct{}{}); err == nil {
		t.Error("unsupported type should fail")
	}
}

func TestValueConversions(t *testing.T) {
	sys, _ := Load(`(literalize A a b c d)
(p f (A ^a <w> ^b <x> ^c <y>) --> (halt))`, Options{Out: io.Discard})
	if _, err := sys.Assert("A", 1, int64(2), 2.5, "sym"); err != nil {
		t.Fatal(err)
	}
	rows := sys.WMClass("A")
	if len(rows) != 1 || !strings.Contains(rows[0], "2.5") || !strings.Contains(rows[0], "sym") {
		t.Fatalf("rows = %v", rows)
	}
	if got := sys.WMClass("Ghost"); got != nil {
		t.Fatalf("unknown class rows = %v", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(`(p R (Ghost ^x 1) --> (halt))`, Options{}); err == nil {
		t.Error("compile error should propagate")
	}
	if _, err := Load(`(literalize A x)`, Options{Matcher: "bogus"}); !errors.Is(err, ErrUnknownMatcher) {
		t.Errorf("unknown matcher: want ErrUnknownMatcher, got %v", err)
	}
	if _, err := Load(`(literalize A x)`, Options{Strategy: "bogus"}); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("unknown strategy: want ErrUnknownStrategy, got %v", err)
	}
	if _, err := Load(`(literalize A x) (Ghost 1)`, Options{}); err == nil {
		t.Error("bad fact should fail")
	}
}

func TestStrategies(t *testing.T) {
	want := []Strategy{StrategyFIFO, StrategyLEX, StrategyPriority, StrategyRandom}
	if got := Strategies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Strategies() = %v, want %v", got, want)
	}
	for _, s := range Strategies() {
		if _, err := Load(`(literalize A x)`, Options{Strategy: s, Seed: 42}); err != nil {
			t.Errorf("strategy %s: %v", s, err)
		}
	}
	// Legacy string literals still compile and load.
	if _, err := Load(`(literalize A x)`, Options{Strategy: "lex"}); err != nil {
		t.Errorf("legacy strategy literal: %v", err)
	}
}

func TestClassesAndRuleNames(t *testing.T) {
	sys, _ := Load(payrollSrc, Options{Out: io.Discard})
	if got := sys.Classes(); !reflect.DeepEqual(got, []string{"Dept", "Emp"}) {
		t.Fatalf("Classes = %v", got)
	}
	if got := sys.RuleNames(); !reflect.DeepEqual(got, []string{"overpaid"}) {
		t.Fatalf("RuleNames = %v", got)
	}
}

func TestStatsAndFormat(t *testing.T) {
	sys, _ := Load(payrollSrc, Options{Out: io.Discard})
	sys.Run()
	stats := sys.Metrics().Counters
	if stats["rule_firings"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
	out := FormatStats(stats, "rule_")
	if !strings.Contains(out, "rule_firings") || strings.Contains(out, "tuples_inserted") {
		t.Fatalf("FormatStats = %q", out)
	}
	if FormatStats(stats) == "" {
		t.Error("unfiltered FormatStats empty")
	}
}

func TestRulebaseQuery(t *testing.T) {
	src := `
(literalize Emp name age)
(p old   (Emp ^age > 55) --> (halt))
(p young (Emp ^age < 30) --> (halt))`
	sys, err := Load(src, Options{Matcher: MatcherPTree, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.RulebaseQuery("Emp", "age", 55, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "old" {
		t.Fatalf("query = %v", got)
	}
	// Other matchers reject rulebase queries.
	sys2, _ := Load(src, Options{Matcher: MatcherCore, Out: io.Discard})
	if _, err := sys2.RulebaseQuery("Emp", "age", 55, nil); err == nil {
		t.Error("non-ptree matcher should reject rulebase queries")
	}
}

func TestViewsThroughFacade(t *testing.T) {
	sys, err := Load(`
(literalize Emp name dno)
(literalize Dept dno dname)
(p hire (Dept ^dno <d> ^dname Toy) - (Emp ^dno <d>) --> (make Emp ^name temp ^dno <d>))
(Dept 7 Toy)
`, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	views, err := sys.AttachViews(`
(literalize Emp name dno)
(literalize Dept dno dname)
(p staff (Emp ^name <n> ^dno <d>) (Dept ^dno <d> ^dname <m>) -->)`)
	if err != nil {
		t.Fatal(err)
	}
	if names := views.Names(); len(names) != 1 || names[0] != "staff" {
		t.Fatalf("view names = %v", names)
	}
	n, err := views.Len("staff")
	if err != nil || n != 0 {
		t.Fatalf("initial view size = %d, %v", n, err)
	}
	// Rule execution (the hire trigger) flows into the view.
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rows, err := views.Rows("staff")
	if err != nil || len(rows) != 1 || !strings.Contains(rows[0], "n=temp") {
		t.Fatalf("view rows = %v, %v", rows, err)
	}
	if _, err := views.Rows("ghost"); err == nil {
		t.Error("unknown view should fail")
	}
	if _, err := views.Len("ghost"); err == nil {
		t.Error("unknown view should fail")
	}
	// Pre-seeded contents: attach views on a system with existing WM.
	sys2, _ := Load(`
(literalize Emp name dno)
(literalize Dept dno dname)
(Emp Ann 7) (Dept 7 Toy)`, Options{Out: io.Discard})
	views2, err := sys2.AttachViews(`
(literalize Emp name dno)
(literalize Dept dno dname)
(p staff (Emp ^name <n> ^dno <d>) (Dept ^dno <d> ^dname <m>) -->)`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := views2.Len("staff"); n != 1 {
		rows, _ := views2.Rows("staff")
		t.Fatalf("seeded view size = %d: %v", n, rows)
	}
}

func TestWriteOutputThroughFacade(t *testing.T) {
	var buf bytes.Buffer
	sys, _ := Load(`
(literalize A x)
(p say (A ^x <v>) --> (write saw <v>))
(A 9)`, Options{Out: &buf})
	sys.Run()
	if got := strings.TrimSpace(buf.String()); got != "saw 9" {
		t.Fatalf("output = %q", got)
	}
}

func TestRunConcurrentFacade(t *testing.T) {
	sys, err := Load(`
(literalize Task id)
(literalize Done id)
(p fin (Task ^id <i>) --> (remove 1) (make Done ^id <i>))
(Task 1) (Task 2) (Task 3) (Task 4)`, Options{Workers: 4, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 4 {
		t.Fatalf("firings = %d", res.Firings)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/prog.ops"
	if err := writeFile(path, `(literalize A x) (A 1)`); err != nil {
		t.Fatal(err)
	}
	sys, err := LoadFile(path, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.WMClass("A")) != 1 {
		t.Fatal("fact not loaded")
	}
	if _, err := LoadFile(dir+"/missing.ops", Options{}); err == nil {
		t.Error("missing file should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestSaveRestoreWM(t *testing.T) {
	src := `
(literalize Emp name dno)
(literalize Dept dno)
(p orphan (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))
(Emp Ann 7)
(Emp Bob 9)
(Dept 9)
`
	sys, err := Load(src, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	keysBefore := sys.ConflictKeys()
	var buf bytes.Buffer
	if err := sys.SaveWM(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh system with the same rules but no facts, restored from the
	// dump, must reach the same WM and conflict set.
	fresh, err := Load(`
(literalize Emp name dno)
(literalize Dept dno)
(p orphan (Emp ^name <n> ^dno <d>) - (Dept ^dno <d>) --> (halt))`, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreWM(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.WM() != sys.WM() {
		t.Fatalf("WM mismatch:\n%s\nvs\n%s", fresh.WM(), sys.WM())
	}
	if !reflect.DeepEqual(fresh.ConflictKeys(), keysBefore) {
		t.Fatalf("conflict set mismatch: %v vs %v", fresh.ConflictKeys(), keysBefore)
	}
	// File variants.
	dir := t.TempDir()
	path := dir + "/wm.dump"
	if err := sys.SaveWMFile(path); err != nil {
		t.Fatal(err)
	}
	fresh2, _ := Load(`
(literalize Emp name dno)
(literalize Dept dno)`, Options{Out: io.Discard})
	if err := fresh2.RestoreWMFile(path); err != nil {
		t.Fatal(err)
	}
	if len(fresh2.WMClass("Emp")) != 2 {
		t.Fatal("file restore lost tuples")
	}
	if err := fresh2.RestoreWMFile(dir + "/missing"); err == nil {
		t.Error("missing dump file should fail")
	}
	if err := fresh2.SaveWMFile(dir + "/nope/deep/x"); err == nil {
		t.Error("unwritable path should fail")
	}
}

// goldenRuns pins the end-to-end behaviour of the testdata corpus for
// every matcher: firing counts and a WM fragment that must (not) appear.
func TestGoldenCorpus(t *testing.T) {
	cases := []struct {
		file     string
		strategy Strategy
		firings  int
		contains []string
		absent   []string
	}{
		{
			file: "testdata/payroll.ops", strategy: "fifo", firings: 3,
			contains: []string{"Emp(Sam", "Emp(Pat"},
			absent:   []string{"Emp(Mike", "Emp(Ann", "Emp(Bob"},
		},
		{
			file: "testdata/monkey.ops", strategy: "priority", firings: 5,
			contains: []string{"Monkey(centre, ladder, bananas)", "Goal(bananas, satisfied)"},
		},
		{
			file: "testdata/simplify.ops", strategy: "fifo", firings: 2,
			contains: []string{"Expression(e1, nil, nil, 7)", "Expression(e2, nil, nil, 9)", "Expression(e3, 0, +, 5)"},
		},
	}
	for _, tc := range cases {
		for _, m := range Matchers() {
			t.Run(tc.file+"/"+string(m), func(t *testing.T) {
				sys, err := LoadFile(tc.file, Options{Matcher: m, Strategy: tc.strategy, Out: io.Discard})
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Firings != tc.firings {
					t.Fatalf("firings = %d, want %d", res.Firings, tc.firings)
				}
				wm := sys.WM()
				for _, want := range tc.contains {
					if !strings.Contains(wm, want) {
						t.Errorf("WM missing %q:\n%s", want, wm)
					}
				}
				for _, bad := range tc.absent {
					if strings.Contains(wm, bad) {
						t.Errorf("WM should not contain %q:\n%s", bad, wm)
					}
				}
			})
		}
	}
}

func TestRegisterFuncThroughFacade(t *testing.T) {
	sys, err := Load(`
(literalize Alert level msg)
(p page (Alert ^level critical ^msg <m>) --> (call page ops <m>) (remove 1))
(Alert critical "disk full")
(Alert info "all well")
`, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	var pages []string
	sys.RegisterFunc("page", func(args []string) error {
		pages = append(pages, strings.Join(args, ": "))
		return nil
	})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d", res.Firings)
	}
	if len(pages) != 1 || pages[0] != "ops: disk full" {
		t.Fatalf("pages = %v", pages)
	}
}

const quelScript = `
# The paper's §2.3 scenario as a QUEL script.
create Emp (name, salary, dno)
create Dept (dno, dname)
range of E is Emp

replace ALWAYS Emp (salary = E.salary)
    where Emp.name = "Mike" and E.name = "Sam"

append to Emp (name = "Sam", salary = 900, dno = 1)
append to Emp (name = "Mike", salary = 500, dno = 1)
append to Dept (dno = 1, dname = "Toy")
`

func TestLoadQuelPaperScenario(t *testing.T) {
	sys, err := LoadQuel(quelScript, "", Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	// The ALWAYS trigger equalized Mike to Sam during loading.
	r, err := sys.Quel(`retrieve (E.salary) where E.name = "Mike"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != "900" {
		t.Fatalf("Mike = %v", r.Rows)
	}
	// The paper's update statement re-fires the trigger.
	upd, err := sys.Quel(`replace E (salary = 1000) where E.name = "Sam"`)
	if err != nil {
		t.Fatal(err)
	}
	if upd.Affected != 1 || upd.Fired == 0 {
		t.Fatalf("update: %+v", upd)
	}
	r, _ = sys.Quel(`retrieve (E.name, E.salary)`)
	joined := ""
	for _, row := range r.Rows {
		joined += strings.Join(row, "=") + ";"
	}
	if !strings.Contains(joined, "Mike=1000") || !strings.Contains(joined, "Sam=1000") {
		t.Fatalf("final salaries: %v", r.Rows)
	}
}

func TestLoadQuelWithExtraRules(t *testing.T) {
	// QUEL schema + plain OPS5 rules side by side.
	sys, err := LoadQuel(`
create A (x)
create Log (x)
append to A (x = 5)
`, `(p solo (A ^x > 3) --> (remove 1) (make Log ^x 1))`, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	// The DML statement ran the OPS5 rule to quiescence.
	if n := len(sys.WMClass("Log")); n != 1 {
		t.Fatalf("Log rows = %d", n)
	}
	if n := len(sys.WMClass("A")); n != 0 {
		t.Fatalf("A rows = %d", n)
	}
}

func TestLoadQuelErrors(t *testing.T) {
	cases := []string{
		`create A (x)
create A (y)`,
		`range of E is Ghost`,
		`replace ALWAYS Ghost (x = 1)`,
		`create A (x)
retrieve (E.zzz)`,
		`garbage statement`,
	}
	for _, src := range cases {
		if _, err := LoadQuel(src, "", Options{Out: io.Discard}); err == nil {
			t.Errorf("LoadQuel(%q) should fail", src)
		}
	}
}

func TestQuelOnOPSLoadedSystem(t *testing.T) {
	// The QUEL interface also works on systems loaded from OPS5 source.
	sys, err := Load(`
(literalize Emp name salary)
(Emp Ann 100)
(Emp Bob 200)`, Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Quel(`range of E is Emp`); err != nil {
		t.Fatal(err)
	}
	r, err := sys.Quel(`retrieve (E.name) where E.salary > 150`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != "Bob" {
		t.Fatalf("rows = %v", r.Rows)
	}
	if _, err := sys.Quel(`replace ALWAYS Emp (salary = 1)`); err == nil {
		t.Error("runtime ALWAYS should be rejected")
	}
}
