package prodsys

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prodsys/internal/faultfs"
)

const durableSrc = `
(literalize Task id)
(literalize Done id)
(p fin (Task ^id <i>) --> (remove 1) (make Done ^id <i>))
(Task 1)
(Task 2)
`

func durableOpts(path string) Options {
	return Options{Out: discard{}, WALPath: path, Matcher: MatcherRete}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestDurableReopenRealFS exercises the default OS filesystem: run to
// quiescence, close, reopen — the second system recovers the final
// working memory from the log without re-reading the program's facts.
func TestDurableReopenRealFS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wm.wal")
	sys, err := Load(durableSrc, durableOpts(path))
	if err != nil {
		t.Fatal(err)
	}
	if info := sys.Recovery(); info.Recovered {
		t.Fatalf("fresh open reported recovery: %+v", info)
	}
	res, err := sys.Run()
	if err != nil || res.Firings != 2 {
		t.Fatalf("run: %+v, %v", res, err)
	}
	want := sys.WM()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := Load(durableSrc, durableOpts(path))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if got := sys2.WM(); got != want {
		t.Fatalf("recovered WM:\n%s\nwant:\n%s", got, want)
	}
	info := sys2.Recovery()
	// 2 initial facts + 2 firings = 4 committed units.
	if !info.Recovered || info.Txns != 4 || info.TornTail || info.Elapsed <= 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	st := sys2.Metrics().Durability
	if st.RecoveryTxns != 4 || st.RecoveryOps == 0 || st.RecoveryNanos <= 0 {
		t.Fatalf("durability metrics: %+v", st)
	}
	// The program facts must NOT have been re-asserted on top.
	if n := len(sys2.WMClass("Task")); n != 0 {
		t.Fatalf("%d Task tuples after recovery, want 0", n)
	}
	if n := len(sys2.WMClass("Done")); n != 2 {
		t.Fatalf("%d Done tuples after recovery, want 2", n)
	}
}

// TestRefractionSurvivesRecovery reopens a system whose only rule has
// already fired without consuming its trigger: replay must restore the
// refraction mark so the rule does not fire again.
func TestRefractionSurvivesRecovery(t *testing.T) {
	src := `
(literalize A x)
(literalize Log x)
(p note (A ^x <v>) --> (make Log ^x <v>))
(A 7)
`
	path := filepath.Join(t.TempDir(), "wm.wal")
	sys, err := Load(src, Options{Out: discard{}, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sys.Run(); err != nil || res.Firings != 1 {
		t.Fatalf("run: %+v, %v", res, err)
	}
	sys.Close()

	sys2, err := Load(src, Options{Out: discard{}, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if res, err := sys2.Run(); err != nil || res.Firings != 0 {
		t.Fatalf("recovered system re-fired: %+v, %v", res, err)
	}
	if n := len(sys2.WMClass("Log")); n != 1 {
		t.Fatalf("%d Log tuples, want 1", n)
	}
}

// TestExplicitCheckpointCompacts takes a checkpoint by hand and checks
// the counter moves, the WAL keeps working, and a reopen sees the
// checkpointed world.
func TestExplicitCheckpointCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wm.wal")
	sys, err := Load(durableSrc, durableOpts(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := sys.Metrics().Durability.WALCheckpoints; n != 1 {
		t.Fatalf("wal_checkpoints = %d, want 1", n)
	}
	// Post-checkpoint commits land in the fresh log.
	if _, err := sys.Batch().Assert("Task", 9).Commit(); err != nil {
		t.Fatal(err)
	}
	want := sys.WM()
	sys.Close()

	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	sys2, err := Load(durableSrc, durableOpts(path))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	info := sys2.Recovery()
	if !info.Checkpoint || info.Tuples == 0 || info.Txns != 1 {
		t.Fatalf("recovery info after compaction: %+v", info)
	}
	if got := sys2.WM(); got != want {
		t.Fatalf("recovered WM:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALSyncModeValidation rejects a sync mode outside WALSyncModes.
func TestWALSyncModeValidation(t *testing.T) {
	opts := Options{Out: discard{}, WALFS: faultfs.New(), WALPath: "wm.wal", WALSync: "sometimes"}
	if _, err := Load(durableSrc, opts); err == nil || !strings.Contains(err.Error(), "sync mode") {
		t.Fatalf("bad sync mode accepted: %v", err)
	}
	for _, m := range WALSyncModes() {
		fs := faultfs.New()
		sys, err := Load(durableSrc, Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal", WALSync: m})
		if err != nil {
			t.Fatalf("mode %q: %v", m, err)
		}
		if err := sys.Close(); err != nil {
			t.Fatalf("mode %q close: %v", m, err)
		}
	}
}

// TestCloseIsIdempotent double-closes and checks durable calls fail
// cleanly afterwards instead of panicking.
func TestCloseIsIdempotent(t *testing.T) {
	fs := faultfs.New()
	sys, err := Load(durableSrc, Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatalf("sync after close should be a no-op without a WAL: %v", err)
	}
	// Committing after close fails (the log is gone) rather than
	// silently dropping durability.
	if _, err := sys.Batch().Assert("Task", 9).Commit(); err == nil {
		t.Fatal("commit after close succeeded silently")
	}
}

// TestNoWALIsInert checks the durable surface stays callable — and
// cheap — when durability is off.
func TestNoWALIsInert(t *testing.T) {
	sys, err := Load(durableSrc, Options{Out: discard{}})
	if err != nil {
		t.Fatal(err)
	}
	if info := sys.Recovery(); info.Recovered || info.Checkpoint {
		t.Fatalf("recovery info without a WAL: %+v", info)
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sys.Metrics().Durability; st.WALAppends != 0 {
		t.Fatalf("WAL appends without a WAL: %+v", st)
	}
}

// TestAutomaticCheckpointEvery lets the unit counter trigger
// compaction and verifies reopen sees checkpoint + tail.
func TestAutomaticCheckpointEvery(t *testing.T) {
	fs := faultfs.New()
	opts := Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal", WALCheckpointEvery: 3}
	sys, err := Load(durableSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if n := sys.Metrics().Durability.WALCheckpoints; n == 0 {
		t.Fatal("no automatic checkpoint after passing the unit threshold")
	}
	want := sys.WM()
	sys.Close()

	sys2, err := Load(durableSrc, Options{Out: discard{}, WALFS: faultfs.FromSnapshot(fs.Snapshot()), WALPath: "wm.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if got := sys2.WM(); got != want {
		t.Fatalf("recovered WM:\n%s\nwant:\n%s", got, want)
	}
	if !sys2.Recovery().Checkpoint {
		t.Fatalf("recovery skipped the checkpoint: %+v", sys2.Recovery())
	}
}

// TestWALAppendFailureSurfaces: when the disk dies mid-run, the commit
// that could not be logged must return the error.
func TestWALAppendFailureSurfaces(t *testing.T) {
	fs := faultfs.New()
	sys, err := Load(durableSrc, Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal"})
	if err != nil {
		t.Fatal(err)
	}
	fs.FailWrite(1, 0, true)
	if _, err := sys.Batch().Assert("Task", 9).Commit(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("commit on crashed disk: %v", err)
	}
}
