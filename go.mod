module prodsys

go 1.22
