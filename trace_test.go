package prodsys

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"testing"

	"prodsys/internal/trace"
	"prodsys/internal/workload"
)

// tracedPayrollRun loads the 50-rule payroll program under the given
// matcher, batch-asserts a deterministic insert-only stream while
// tracing, runs to quiescence, and returns the stopped tracer and the
// run result.
func tracedPayrollRun(t *testing.T, m Matcher, nOps int) (*System, *Tracer, Result) {
	t.Helper()
	sys, err := Load(workload.PayrollRules(50, false), Options{Matcher: m, Out: io.Discard})
	if err != nil {
		t.Fatalf("%s: load: %v", m, err)
	}
	tr := sys.Trace(TraceOptions{Capacity: 1 << 17})
	b := sys.Batch()
	for _, op := range workload.PayrollOps(1, nOps, 0) {
		vals := make([]any, len(op.Tuple))
		for i, v := range op.Tuple {
			vals[i] = v
		}
		b.Assert(op.Class, vals...)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatalf("%s: commit: %v", m, err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", m, err)
	}
	tr.Stop()
	return sys, tr, res
}

// firedKeys extracts the order-normalized rule_fire instantiation keys.
func firedKeys(tr *Tracer) []string {
	var keys []string
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindRuleFire {
			keys = append(keys, ev.Extra)
		}
	}
	sort.Strings(keys)
	return keys
}

// TestTraceEquivalenceAcrossMatchers pins the cross-matcher contract:
// on a confluent workload (the non-consuming payroll rules — fired
// actions make inert tuples) every matcher fires exactly the same set
// of instantiations, so the order-normalized rule_fire key sequences
// are identical. Riding along, each matcher's trace must satisfy the
// profile acceptance bar: non-zero match and fire timings for every
// rule, and a reconstructible Explanation for a fired rule.
func TestTraceEquivalenceAcrossMatchers(t *testing.T) {
	const nOps = 200
	var want []string
	for _, m := range Matchers() {
		_, tr, res := tracedPayrollRun(t, m, nOps)
		if res.Firings == 0 {
			t.Fatalf("%s: no firings", m)
		}
		if tr.Dropped() != 0 {
			t.Fatalf("%s: ring overflow (%d dropped); raise test capacity", m, tr.Dropped())
		}
		keys := firedKeys(tr)
		if len(keys) != res.Firings {
			t.Errorf("%s: %d rule_fire events, %d firings reported", m, len(keys), res.Firings)
		}
		if want == nil {
			want = keys
			continue
		}
		if !reflect.DeepEqual(keys, want) {
			t.Errorf("%s: fired instantiation set diverges from %s (%d vs %d keys)",
				m, Matchers()[0], len(keys), len(want))
		}
	}
}

// TestProfileCoversEveryRule is the acceptance check on the 50-rule
// benchmark, per matcher: the profile reports non-zero match time,
// firings and fire time for every rule, and Explain names the
// supporting condition elements of at least one fired instantiation.
func TestProfileCoversEveryRule(t *testing.T) {
	for _, m := range Matchers() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			_, tr, _ := tracedPayrollRun(t, m, 200)
			p := tr.Profile()
			if len(p.Rules) != 50 {
				t.Fatalf("profile covers %d rules, want 50", len(p.Rules))
			}
			for _, r := range p.Rules {
				if r.Firings == 0 {
					t.Errorf("rule %s: no firings recorded", r.Name)
				}
				if r.FireTime <= 0 {
					t.Errorf("rule %s: zero fire time", r.Name)
				}
				if r.MatchTime <= 0 {
					t.Errorf("rule %s: zero match time", r.Name)
				}
			}
			// Explain a fired rule: both payroll CEs are positive, so
			// both must carry a supporting tuple.
			ex, err := tr.Explain(p.Rules[0].Name)
			if err != nil {
				t.Fatalf("explain: %v", err)
			}
			if len(ex.CEs) != 2 {
				t.Fatalf("explain: %d CEs, want 2", len(ex.CEs))
			}
			for _, ce := range ex.CEs {
				if ce.Class == "" {
					t.Errorf("explain: CE %d has no class", ce.Index)
				}
				if !ce.Negated && ce.TupleID == 0 {
					t.Errorf("explain: CE %d (%s) has no supporting tuple", ce.Index, ce.Class)
				}
			}
		})
	}
}

// TestConcurrentAbortAccounting pins the abort bugfix: on a contended
// workload (every rule consumes from one class, so all but one of a
// tuple's instantiations abort) the run result, the txn_aborts counter
// and the txn_abort event count must agree exactly.
func TestConcurrentAbortAccounting(t *testing.T) {
	sys, err := Load(workload.TaskRules(8, true), Options{Workers: 4, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.Trace(TraceOptions{})
	b := sys.Batch()
	for _, op := range workload.TaskFacts(8, true, 40) {
		vals := make([]any, len(op.Tuple))
		for i, v := range op.Tuple {
			vals[i] = v
		}
		b.Assert(op.Class, vals...)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics()
	res, err := sys.RunConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	tr.Stop()
	if res.Aborts == 0 {
		t.Fatal("contended workload produced no aborts")
	}
	d := sys.Metrics().Delta(before)
	if int64(res.Aborts) != d.Execution.TxnAborts {
		t.Errorf("Result.Aborts = %d, txn_aborts counter delta = %d", res.Aborts, d.Execution.TxnAborts)
	}
	if got := tr.KindCount(trace.KindTxnAbort); int64(res.Aborts) != got {
		t.Errorf("Result.Aborts = %d, txn_abort events = %d", res.Aborts, got)
	}
	// Every abort event names its reason.
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindTxnAbort && ev.Extra == "" {
			t.Errorf("txn_abort event %d has no reason", ev.Seq)
		}
	}
}

// TestMetricsTypedSnapshot checks the typed sections against the raw
// counter map and the Delta arithmetic.
func TestMetricsTypedSnapshot(t *testing.T) {
	sys, err := Load("(literalize A x)\n", Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	m0 := sys.Metrics()
	if _, err := sys.Assert("A", 1); err != nil {
		t.Fatal(err)
	}
	m1 := sys.Metrics()
	if m1.Storage.TuplesInserted != m1.Counters["tuples_inserted"] {
		t.Errorf("Storage.TuplesInserted = %d, raw counter = %d",
			m1.Storage.TuplesInserted, m1.Counters["tuples_inserted"])
	}
	if m1.Batch.Deltas != m1.Counters["batch_deltas"] {
		t.Errorf("Batch.Deltas = %d, raw counter = %d", m1.Batch.Deltas, m1.Counters["batch_deltas"])
	}
	d := m1.Delta(m0)
	if d.Storage.TuplesInserted != m1.Storage.TuplesInserted-m0.Storage.TuplesInserted {
		t.Errorf("Delta.Storage.TuplesInserted = %d", d.Storage.TuplesInserted)
	}
	if d.Storage.TuplesInserted < 1 {
		t.Errorf("Assert did not register in the delta: %+v", d.Storage)
	}
	if m1.Planner.PlansBuilt != m1.Counters["plans_built"] {
		t.Errorf("Planner.PlansBuilt = %d, raw counter = %d",
			m1.Planner.PlansBuilt, m1.Counters["plans_built"])
	}
}

// TestRunContextCancellation checks that a cancelled context stops
// both executors before any firing, and that the system stays usable.
func TestRunContextCancellation(t *testing.T) {
	src := "(literalize A x)\n(literalize Log x)\n(p note (A ^x <v>) --> (make Log ^x <v>))\n(A 1)\n"
	for _, run := range []struct {
		name string
		call func(*System, context.Context) (Result, error)
	}{
		{"serial", (*System).RunContext},
		{"concurrent", (*System).RunConcurrentContext},
	} {
		sys, err := Load(src, Options{Out: io.Discard})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := run.call(sys, ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", run.name, err)
		}
		if res.Firings != 0 {
			t.Fatalf("%s: fired %d rules under a cancelled context", run.name, res.Firings)
		}
		// The cancelled run must leave the system consistent: a plain
		// run afterwards fires normally.
		res, err = sys.Run()
		if err != nil || res.Firings != 1 {
			t.Fatalf("%s: follow-up run: %d firings, err %v", run.name, res.Firings, err)
		}
	}
}

// TestCommitContextCancellation checks that a cancelled context stops a
// batch before it acquires locks or touches working memory.
func TestCommitContextCancellation(t *testing.T) {
	sys, err := Load("(literalize A x)\n", Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Batch().Assert("A", 1).CommitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := len(sys.WMClass("A")); got != 0 {
		t.Fatalf("cancelled batch applied %d tuples", got)
	}
	// A fresh batch on a live context applies normally.
	if _, err := sys.Batch().Assert("A", 1).CommitContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.WMClass("A")); got != 1 {
		t.Fatalf("follow-up batch applied %d tuples, want 1", got)
	}
}

// TestTraceExportRoundTrip smoke-tests both exporters on a real run's
// event stream.
func TestTraceExportRoundTrip(t *testing.T) {
	_, tr, _ := tracedPayrollRun(t, MatcherCore, 50)
	var jsonl, chrome countingWriter
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if jsonl.n == 0 || chrome.n == 0 {
		t.Fatalf("empty export: jsonl=%d chrome=%d bytes", jsonl.n, chrome.n)
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// TestDisabledTracerKeepsRunsClean double-checks the no-op default: a
// system that never called Trace runs normally and reports a nil-safe,
// disabled tracer.
func TestDisabledTracerKeepsRunsClean(t *testing.T) {
	sys, err := Load(workload.PayrollRules(5, false), Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer().Enabled() {
		t.Fatal("tracer enabled before Trace was called")
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.Assert("Emp", fmt.Sprintf("e%d", i), 30, 900*i, i%3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Tracer().Len() != 0 || sys.Tracer().Total() != 0 {
		t.Fatalf("disabled tracer recorded events: len=%d total=%d", sys.Tracer().Len(), sys.Tracer().Total())
	}
}
