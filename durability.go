package prodsys

// This file is the crash-safety surface of the system: write-ahead
// logging of every committed unit, checkpointed recovery at Load, and
// the dials that tune both. The mechanism lives in internal/wal; see
// docs/DURABILITY.md for the protocol.

import (
	"bytes"
	"fmt"
	"time"

	"prodsys/internal/metrics"
	"prodsys/internal/trace"
	"prodsys/internal/wal"
)

// WALSyncMode selects when the write-ahead log reaches stable storage.
type WALSyncMode string

// The available sync modes.
const (
	// WALSyncAlways fsyncs after every committed unit (default): no
	// acknowledged commit is ever lost.
	WALSyncAlways WALSyncMode = "always"
	// WALSyncInterval fsyncs at most once per Options.WALSyncEvery; a
	// crash loses at most the last interval's commits.
	WALSyncInterval WALSyncMode = "interval"
	// WALSyncNever leaves flushing to the OS and Close.
	WALSyncNever WALSyncMode = "never"
	// WALSyncGroup coalesces fsyncs across concurrently committing
	// clients (group commit): each commit's acknowledgement waits for a
	// group fsync covering every unit appended so far, issued by the
	// first waiter. Same guarantee as WALSyncAlways — no acknowledged
	// commit is ever lost — at a fraction of the fsyncs under
	// concurrency. The policy of choice for server mode.
	WALSyncGroup WALSyncMode = "group"
)

// WALSyncModes lists every available sync mode.
func WALSyncModes() []WALSyncMode {
	return []WALSyncMode{WALSyncAlways, WALSyncInterval, WALSyncNever, WALSyncGroup}
}

// RecoveryInfo describes what Load found in the write-ahead log.
type RecoveryInfo struct {
	// Recovered reports that prior durable state existed and was
	// replayed; the program's initial facts were NOT re-loaded.
	Recovered bool
	// Checkpoint reports that a checkpoint snapshot seeded the WM.
	Checkpoint bool
	// Tuples counts tuples restored from the checkpoint.
	Tuples int
	// Txns counts committed log units replayed after the checkpoint.
	Txns int
	// Ops counts WM operations those units carried.
	Ops int
	// TornTail reports the log ended in a torn or corrupt record — the
	// signature of a crash mid-write — which recovery truncated.
	TornTail bool
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Recovery reports what Load recovered from the write-ahead log; the
// zero value when the system has no WAL or started fresh.
func (s *System) Recovery() RecoveryInfo {
	if s.recovery == nil {
		return RecoveryInfo{}
	}
	return *s.recovery
}

// openWAL opens (or creates) the write-ahead log configured in opts,
// replays any recovered state through the matcher, and attaches the log
// to the engine's commit points. A no-op when opts.WALPath is empty.
func (s *System) openWAL(opts Options) error {
	if opts.WALPath == "" {
		return nil
	}
	var policy wal.SyncPolicy
	switch opts.WALSync {
	case "", WALSyncAlways:
		policy = wal.SyncAlways
	case WALSyncInterval:
		policy = wal.SyncInterval
	case WALSyncNever:
		policy = wal.SyncNever
	case WALSyncGroup:
		policy = wal.SyncGroup
	default:
		return fmt.Errorf("prodsys: unknown WAL sync mode %q", opts.WALSync)
	}
	l, rec, err := wal.Open(opts.WALPath, wal.Options{
		Policy:          policy,
		Interval:        opts.WALSyncEvery,
		CheckpointEvery: opts.WALCheckpointEvery,
		Stats:           s.stats,
		Tracer:          s.tracer,
		FS:              opts.WALFS,
	})
	if err != nil {
		return fmt.Errorf("prodsys: open WAL: %w", err)
	}
	info := &RecoveryInfo{Recovered: rec.Existed, TornTail: rec.TornTail}
	if rec.Existed {
		t0 := time.Now()
		if len(rec.Checkpoint) > 0 {
			restored, err := s.db.Restore(bytes.NewReader(rec.Checkpoint))
			if err != nil {
				l.Close()
				return fmt.Errorf("prodsys: restore checkpoint: %w", err)
			}
			for _, rt := range restored {
				if err := s.matcher.Insert(rt.Class, rt.ID, rt.Tuple); err != nil {
					l.Close()
					return fmt.Errorf("prodsys: restore checkpoint: %w", err)
				}
			}
			info.Checkpoint = true
			info.Tuples = len(restored)
		}
		n, err := s.eng.Replay(rec.Txns)
		if err != nil {
			l.Close()
			return fmt.Errorf("prodsys: replay WAL: %w", err)
		}
		info.Txns = len(rec.Txns)
		info.Ops = n
		info.Elapsed = time.Since(t0)
		s.stats.Add(metrics.RecoveryTuples, int64(info.Tuples))
		s.stats.Add(metrics.RecoveryTxns, int64(info.Txns))
		s.stats.Add(metrics.RecoveryOps, int64(n))
		s.stats.Add(metrics.RecoveryNanos, info.Elapsed.Nanoseconds())
		if s.tracer.Enabled() {
			s.tracer.Emit(trace.Event{
				Kind: trace.KindRecoveryReplay, At: s.tracer.Now(),
				CE: -1, Count: int64(info.Txns),
			})
		}
	}
	s.wal = l
	s.recovery = info
	s.eng.SetWAL(l)
	return nil
}

// Checkpoint forces a WAL checkpoint compaction: the current working
// memory is snapshotted atomically (temp file + fsync + rename) and the
// log restarts empty under a new epoch, so recovery reads the snapshot
// plus only the units committed since. A no-op without a WAL.
func (s *System) Checkpoint() error { return s.eng.Checkpoint() }

// SyncWAL forces any buffered log records to stable storage — useful
// under WALSyncInterval or WALSyncNever before handing control to code
// that might crash. A no-op without a WAL.
func (s *System) SyncWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// ReadOnly reports whether a WAL failure (full disk, I/O error) has
// flipped the system into read-only degraded mode: queries, WM reads,
// metrics and audits keep serving; writes fail fast with ErrReadOnly.
// Degradation is one-way — restart the system (recovery replays the
// committed log) to resume writes.
func (s *System) ReadOnly() bool { return s.eng.ReadOnly() }

// ReadOnlyCause returns the failure that flipped the system read-only,
// nil while writable.
func (s *System) ReadOnlyCause() error { return s.eng.ReadOnlyCause() }

// Close shuts the system down: writes start failing with ErrClosed, and
// the write-ahead log (when one is attached) is synced and closed.
// Idempotent and safe for concurrent callers — double Close and a Close
// racing an in-flight Run or Batch must not panic; the racing commit
// either lands in the log before it closes or fails with ErrClosed.
// Reads keep working after Close.
func (s *System) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.wal = nil
	return s.eng.Shutdown()
}
