// Command psbench runs the experiment harness: every figure and
// experiment of the reproduction's DESIGN.md index, printed as aligned
// tables.
//
// Usage:
//
//	psbench                 # run everything at default scale
//	psbench -scale 0.2      # quick pass
//	psbench -exp e2,e7      # selected experiments
//	psbench -list           # list available experiments
//	psbench -trace out.json # trace demo: payroll run, profile + Chrome trace
//
//	psbench -storage-bench BENCH_6.json
//	  storage benchmark: payroll insert batch crossed over backend
//	  (row|columnar) × index availability × matcher, printed as a table
//	  and written to the named file as JSON
//
//	psbench -shard-bench BENCH_9.json
//	  shard-scaling benchmark: the payroll insert batch on a 4-way
//	  sharded catalog at 1/2/4/8 scheduler workers vs the unsharded
//	  serial baseline, printed as a table and written to the named
//	  file as JSON (the runner's CPU count is recorded per row)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"prodsys"
	"prodsys/internal/experiments"
	"prodsys/internal/workload"
)

// registry maps experiment IDs to constructors at default parameters.
func registry(scale float64) map[string]func() experiments.Table {
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			return 1
		}
		return v
	}
	return map[string]func() experiments.Table{
		"fig1": experiments.Fig1,
		"fig2": experiments.Fig2,
		"fig3": experiments.Fig3,
		"e1":   func() experiments.Table { return experiments.E1PropagationDepth([]int{2, 4, 8, 16, 32}, n(200)) },
		"e2":   func() experiments.Table { return experiments.E2MatchTime([]int{10, 100, 1000}, n(2000)) },
		"e3":   func() experiments.Table { return experiments.E3Space([]int{10, 100}, n(1000)) },
		"e4": func() experiments.Table {
			return experiments.E4FalseDrops([]float64{0, 0.25, 0.5, 0.75, 0.9}, n(1000))
		},
		"e5":  func() experiments.Table { return experiments.E5ParallelPropagation(n(300)) },
		"e6":  func() experiments.Table { return experiments.E6Serializability(6) },
		"e7":  func() experiments.Table { return experiments.E7ConcurrentThroughput(8, n(64), []int{1, 2, 4, 8}) },
		"e8":  func() experiments.Table { return experiments.E8ScheduleCount() },
		"e9":  func() experiments.Table { return experiments.E9Negation(n(1500)) },
		"e10": func() experiments.Table { return experiments.E10ViewMaintenance(n(500)) },
		"e11": func() experiments.Table { return experiments.E11RuleQuery(n(1000), n(500)) },
		"e12": func() experiments.Table { return experiments.E12SharedNetwork(5, 4, n(800)) },
		"e13": func() experiments.Table { return experiments.E13ConcurrencyPotential(n(64)) },
	}
}

// order is the presentation order.
var order = []string{
	"fig1", "fig2", "fig3",
	"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
}

// traceDemo loads the 50-rule payroll program, records a traced batch
// assert plus serial run, prints the per-rule profile, and writes the
// event stream as a Chrome trace_event file (load it at
// chrome://tracing or https://ui.perfetto.dev).
func traceDemo(path, matcher string, nOps int) error {
	sys, err := prodsys.Load(workload.PayrollRules(50, false), prodsys.Options{
		Matcher: prodsys.Matcher(matcher),
		Out:     io.Discard,
	})
	if err != nil {
		return err
	}
	tracer := sys.Trace(prodsys.TraceOptions{})
	b := sys.Batch()
	for _, op := range workload.PayrollOps(1, nOps, 0) {
		vals := make([]any, len(op.Tuple))
		for i, v := range op.Tuple {
			vals[i] = v
		}
		b.Assert(op.Class, vals...)
	}
	if _, err := b.Commit(); err != nil {
		return err
	}
	res, err := sys.Run()
	if err != nil {
		return err
	}
	tracer.Stop()
	fmt.Printf("trace demo: matcher=%s ops=%d firings=%d cycles=%d\n\n", sys.MatcherName(), nOps, res.Firings, res.Cycles)
	fmt.Print(tracer.Profile().String())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tracer.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nChrome trace written to %s (%d events recorded, %d dropped)\n", path, tracer.Len(), tracer.Dropped())
	return nil
}

// storageBench runs the storage benchmark and writes the results to
// path as JSON, printing the aligned table to stdout.
func storageBench(path string, ruleCount, nOps int) error {
	rows := experiments.StorageBench(ruleCount, nOps)
	fmt.Print(experiments.StorageTable(rows).String())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nstorage benchmark written to %s\n", path)
	return nil
}

// plannerBench runs the join-planner benchmark and writes the results
// to path as JSON, printing the aligned table to stdout.
func plannerBench(path string, scale float64) error {
	rows := experiments.PlannerBench(scale)
	fmt.Print(experiments.PlannerTable(rows).String())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nplanner benchmark written to %s\n", path)
	return nil
}

// shardBench runs the shard-scaling benchmark and writes the results
// to path as JSON, printing the aligned table to stdout.
func shardBench(path string, ruleCount, nOps int) error {
	rows := experiments.ShardBench(ruleCount, nOps)
	fmt.Print(experiments.ShardTable(rows).String())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nshard benchmark written to %s\n", path)
	return nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (0 < scale ≤ 1 for quicker runs)")
	exps := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	traceOut := flag.String("trace", "", "run the payroll trace demo and write a Chrome trace_event file to this path")
	traceMatcher := flag.String("trace-matcher", "core", "matcher for the trace demo")
	traceOps := flag.Int("trace-ops", 400, "operation count for the trace demo")
	storageOut := flag.String("storage-bench", "", "run the storage benchmark and write JSON results to this path")
	storageRules := flag.Int("storage-rules", 50, "rule count for the storage benchmark")
	storageOps := flag.Int("storage-ops", 1500, "operation count for the storage benchmark")
	plannerOut := flag.String("planner-bench", "", "run the join-planner benchmark and write JSON results to this path")
	shardOut := flag.String("shard-bench", "", "run the shard-scaling benchmark and write JSON results to this path")
	shardRules := flag.Int("shard-rules", 50, "rule count for the shard-scaling benchmark")
	shardOps := flag.Int("shard-ops", 1500, "operation count for the shard-scaling benchmark")
	flag.Parse()

	if *shardOut != "" {
		if err := shardBench(*shardOut, *shardRules, *shardOps); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		return
	}

	if *plannerOut != "" {
		if err := plannerBench(*plannerOut, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		return
	}

	if *storageOut != "" {
		if err := storageBench(*storageOut, *storageRules, *storageOps); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		if err := traceDemo(*traceOut, *traceMatcher, *traceOps); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		return
	}

	reg := registry(*scale)
	if *list {
		ids := make([]string, 0, len(reg))
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	selected := order
	if *exps != "" {
		selected = nil
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "psbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, id)
		}
	}
	for i, id := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(reg[id]().String())
	}
}
