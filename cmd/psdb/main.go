// Command psdb loads an OPS5-subset production program and runs it
// against the DBMS-backed matchers.
//
// Usage:
//
//	psdb [flags] program.ops
//
// Flags select the matching algorithm (-matcher), the conflict-resolution
// strategy (-strategy), the tuple storage backend (-storage,
// -storage-by-class), serial or concurrent execution (-concurrent,
// -workers), and what to print afterwards (-wm, -conflict, -stats).
// Tracing flags record the run's execution events: -trace exports them
// to a file (-trace-format jsonl or chrome), -profile prints the
// per-rule profile table.
//
// Durability flags attach a write-ahead log: -wal names the log file
// (reopening it recovers the previous run's committed state before
// anything else happens), -wal-sync picks the sync policy,
// -checkpoint-every compacts the log periodically, and -run=false
// recovers and prints without firing any rules.
//
// Robustness flags: -audit runs a full integrity audit after the run
// and exits non-zero on divergence (-audit-repair also rebuilds the
// divergent state), -corrupt injects seeded corruption into the
// matcher's derived state beforehand (for demos and drills), and
// -txn-timeout arms the per-transaction watchdog for concurrent runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prodsys"
)

func main() {
	matcher := flag.String("matcher", "core", "matching algorithm: rete|requery|core|core-parallel|marker|ptree")
	strategy := flag.String("strategy", "fifo", "conflict resolution: fifo|lex|priority|random")
	storage := flag.String("storage", "", "tuple storage backend: row|columnar (empty = process default)")
	storageByClass := flag.String("storage-by-class", "", "per-class backend overrides, e.g. Emp=columnar,Dept=row")
	shards := flag.Int("shards", 0, "shard WM relations and matcher state this many ways [1,64]; 0 = PRODSYS_SHARDS or 1")
	shardWorkers := flag.Int("shard-workers", 0, "parallel match scheduler pool size; 0 = auto, negative = serial maintenance")
	seed := flag.Int64("seed", 1, "seed for the random strategy")
	concurrent := flag.Bool("concurrent", false, "fire applicable rules concurrently as transactions (§5)")
	workers := flag.Int("workers", 4, "concurrent executor pool size")
	max := flag.Int("max", 10000, "firing cap")
	setAtATime := flag.Bool("set-at-a-time", false, "fire all eligible instantiations of the selected rule per cycle (§5.1)")
	showWM := flag.Bool("wm", true, "print final working memory")
	showCS := flag.Bool("conflict", false, "print the final conflict set")
	showStats := flag.Bool("stats", false, "print operation counters")
	explain := flag.Bool("explain", false, "print each rule's join plans: access path, join position, estimated vs actual cardinality per condition element")
	plannerMode := flag.String("planner", "cost", "join planner: cost|fixed")
	loadWM := flag.String("load", "", "restore working memory from a dump file before running")
	saveWM := flag.String("save", "", "dump working memory to a file after running")
	traceOut := flag.String("trace", "", "record execution events and export them to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace export format: jsonl|chrome")
	profile := flag.Bool("profile", false, "record execution events and print the per-rule profile")
	walPath := flag.String("wal", "", "write-ahead log file; reopening recovers committed state")
	walSync := flag.String("wal-sync", "always", "WAL sync policy: always|interval|never")
	walSyncEvery := flag.Duration("wal-sync-interval", 100*time.Millisecond, "sync period for -wal-sync=interval")
	ckptEvery := flag.Int("checkpoint-every", 0, "compact the WAL after this many committed units (0 = never)")
	doRun := flag.Bool("run", true, "fire rules; -run=false only loads (and recovers) then prints")
	doAudit := flag.Bool("audit", false, "run a full integrity audit after the run; exit 1 on divergence")
	auditRepair := flag.Bool("audit-repair", false, "with -audit: rebuild divergent derived state from WM")
	corruptSeed := flag.Int64("corrupt", 0, "inject seeded corruption into the matcher's derived state before the audit (0 = none)")
	txnTimeout := flag.Duration("txn-timeout", 0, "per-transaction watchdog: abort and retry firings whose lock waits exceed this (0 = no watchdog)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psdb [flags] program.ops")
		flag.PrintDefaults()
		os.Exit(2)
	}
	perClass := map[string]prodsys.Storage{}
	if *storageByClass != "" {
		for _, pair := range strings.Split(*storageByClass, ",") {
			class, backend, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || class == "" {
				fmt.Fprintf(os.Stderr, "psdb: malformed -storage-by-class entry %q (want class=backend)\n", pair)
				os.Exit(2)
			}
			perClass[class] = prodsys.Storage(backend)
		}
	}
	sys, err := prodsys.LoadFile(flag.Arg(0), prodsys.Options{
		Matcher:            prodsys.Matcher(*matcher),
		Strategy:           prodsys.Strategy(*strategy),
		Storage:            prodsys.Storage(*storage),
		StorageByClass:     perClass,
		Shards:             *shards,
		ShardWorkers:       *shardWorkers,
		Planner:            prodsys.Planner(*plannerMode),
		Seed:               *seed,
		Workers:            *workers,
		MaxFirings:         *max,
		SetAtATime:         *setAtATime,
		Out:                os.Stdout,
		WALPath:            *walPath,
		WALSync:            prodsys.WALSyncMode(*walSync),
		WALSyncEvery:       *walSyncEvery,
		WALCheckpointEvery: *ckptEvery,
		TxnTimeout:         *txnTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdb:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if info := sys.Recovery(); info.Recovered {
		fmt.Printf("; recovered %d checkpoint tuples + %d logged txns (%d ops) in %v",
			info.Tuples, info.Txns, info.Ops, info.Elapsed.Round(time.Microsecond))
		if info.TornTail {
			fmt.Printf(", torn tail truncated")
		}
		fmt.Println()
	}

	if *loadWM != "" {
		if err := sys.RestoreWMFile(*loadWM); err != nil {
			fmt.Fprintln(os.Stderr, "psdb:", err)
			os.Exit(1)
		}
	}

	var tracer *prodsys.Tracer
	if *traceOut != "" || *profile {
		if *traceFormat != "jsonl" && *traceFormat != "chrome" {
			fmt.Fprintf(os.Stderr, "psdb: unknown trace format %q (want jsonl or chrome)\n", *traceFormat)
			os.Exit(2)
		}
		tracer = sys.Trace(prodsys.TraceOptions{})
	}

	if *doRun {
		var res prodsys.Result
		if *concurrent {
			res, err = sys.RunConcurrent()
		} else {
			res, err = sys.Run()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdb:", err)
			os.Exit(1)
		}
		fmt.Printf("; %d firings, %d cycles", res.Firings, res.Cycles)
		if *concurrent {
			fmt.Printf(", %d aborts", res.Aborts)
		}
		if res.Halted {
			fmt.Printf(", halted")
		}
		fmt.Println()
	}

	auditFailed := false
	if *corruptSeed != 0 {
		if desc := sys.InjectCorruption(*corruptSeed); desc != "" {
			fmt.Println("; injected corruption:", desc)
		} else {
			fmt.Println("; corruption injection found nothing to corrupt")
		}
	}
	if *doAudit {
		rep, err := sys.Audit(prodsys.AuditOptions{Repair: *auditRepair})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdb:", err)
			os.Exit(1)
		}
		fmt.Printf("; audit (%s): %d rules checked, %d divergences\n",
			rep.Matcher, rep.RulesChecked, len(rep.Divergences))
		for _, d := range rep.Divergences {
			fmt.Println(";   divergence:", d.String())
		}
		if !rep.Clean() {
			auditFailed = true
			if *auditRepair {
				fmt.Printf("; repaired %d divergences (matcher rebuilt: %v)\n", rep.Repaired, rep.Rebuilt)
				again, err := sys.Audit(prodsys.AuditOptions{})
				if err != nil {
					fmt.Fprintln(os.Stderr, "psdb:", err)
					os.Exit(1)
				}
				if again.Clean() {
					fmt.Println("; re-audit clean")
					auditFailed = false
				} else {
					fmt.Printf("; re-audit still divergent: %d divergences\n", len(again.Divergences))
				}
			}
		}
	}

	if *showWM {
		fmt.Println("; final working memory:")
		fmt.Println(sys.WM())
	}
	if *showCS {
		fmt.Println("; conflict set:")
		for _, k := range sys.ConflictKeys() {
			fmt.Println(";  ", k)
		}
	}
	if *showStats {
		fmt.Println("; statistics:")
		fmt.Print(sys.Metrics().String())
	}
	if *explain {
		fmt.Println("; join plans:")
		for _, rule := range sys.RuleNames() {
			plans, err := sys.Plans(rule)
			if err != nil {
				fmt.Fprintln(os.Stderr, "psdb:", err)
				os.Exit(1)
			}
			for _, p := range plans {
				for _, line := range strings.Split(strings.TrimRight(p.String(), "\n"), "\n") {
					fmt.Println(";", line)
				}
			}
		}
	}
	if tracer != nil {
		tracer.Stop()
		if *profile {
			fmt.Println("; profile:")
			fmt.Print(tracer.Profile().String())
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "psdb:", err)
				os.Exit(1)
			}
			if *traceFormat == "chrome" {
				err = tracer.WriteChromeTrace(f)
			} else {
				err = tracer.WriteJSONL(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "psdb:", err)
				os.Exit(1)
			}
		}
	}
	if *saveWM != "" {
		if err := sys.SaveWMFile(*saveWM); err != nil {
			fmt.Fprintln(os.Stderr, "psdb:", err)
			os.Exit(1)
		}
	}
	if auditFailed {
		sys.Close()
		os.Exit(1)
	}
}
