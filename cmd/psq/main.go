// Command psq is a QUEL shell over a production system: it loads a QUEL
// script (schema, ALWAYS triggers, initial data — see §2.3 of the paper)
// and then reads further statements from standard input, one per line.
//
// Usage:
//
//	psq setup.quel            # load, then interactive statements
//	echo 'retrieve (E.name)' | psq setup.quel
//	psq -rules extra.ops setup.quel
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"prodsys"
)

func main() {
	rulesPath := flag.String("rules", "", "additional OPS5 rule file loaded alongside the QUEL script")
	matcher := flag.String("matcher", "core", "matching algorithm")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psq [flags] setup.quel")
		flag.PrintDefaults()
		os.Exit(2)
	}
	script, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "psq:", err)
		os.Exit(1)
	}
	opsRules := ""
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psq:", err)
			os.Exit(1)
		}
		opsRules = string(data)
	}
	sys, err := prodsys.LoadQuel(string(script), opsRules, prodsys.Options{
		Matcher: prodsys.Matcher(*matcher),
		Out:     os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psq:", err)
		os.Exit(1)
	}

	interactive := isTerminal(os.Stdin)
	if interactive {
		fmt.Println("psq — QUEL over a production system. Statements end at end of line; \\q quits.")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for {
		if interactive {
			fmt.Print("quel> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--"):
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\wm`:
			fmt.Println(sys.WM())
			continue
		case line == `\conflict`:
			for _, k := range sys.ConflictKeys() {
				fmt.Println(" ", k)
			}
			continue
		}
		res, err := sys.Quel(line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Println(strings.Join(res.Columns, "\t"))
			for _, row := range res.Rows {
				fmt.Println(strings.Join(row, "\t"))
			}
			fmt.Printf("(%d row(s))\n", len(res.Rows))
			continue
		}
		fmt.Printf("(%d tuple(s) affected, %d trigger firing(s))\n", res.Affected, res.Fired)
	}
}

// isTerminal reports whether f is attached to a terminal (best effort,
// stdlib only: character devices are treated as terminals).
func isTerminal(f *os.File) bool {
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}
