// Command psload is the load and chaos harness for psserve: many
// concurrent clients drive a mixed assert/retract/query workload over
// HTTP, measuring throughput, p50/p99 latency, and shed (429) rates.
//
// Usage:
//
//	psload -spawn -psserve bin/psserve -program testdata/server.ops -wal /tmp/wm.wal \
//	       -clients 8 -duration 10s [-chaos] [-out BENCH_8.json]
//
// With -spawn, psload launches and manages the server process itself;
// without it, point -addr at a running psserve. With -chaos, the
// harness SIGKILLs the server mid-load, restarts it, measures recovery
// time, and then checks the acknowledgement oracle: every assertion
// the server acknowledged before the kill (and not since retracted)
// must be present in the recovered working memory — acknowledged means
// durable, no exceptions — and a full integrity audit must come back
// clean. Results land in -out as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "psserve address")
	clients := flag.Int("clients", 8, "concurrent load clients")
	duration := flag.Duration("duration", 5*time.Second, "total load duration")
	mix := flag.String("mix", "70,10,20", "assert,retract,query percentages")
	spawn := flag.Bool("spawn", false, "launch and manage the server process")
	psserve := flag.String("psserve", "psserve", "psserve binary (with -spawn)")
	program := flag.String("program", "testdata/server.ops", "program file (with -spawn)")
	walPath := flag.String("wal", "", "WAL file (with -spawn; required for -chaos)")
	maxInFlight := flag.Int("max-inflight", 32, "server max in-flight (with -spawn)")
	maxQueue := flag.Int("max-queue", 128, "server max queue (with -spawn)")
	chaos := flag.Bool("chaos", false, "SIGKILL the server mid-load, restart, verify recovery (needs -spawn and -wal)")
	shards := flag.Int("shards", 0, "forwarded to the spawned psserve as -shards (with -spawn)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	label := flag.String("label", "mixed", "workload label recorded in the report")
	out := flag.String("out", "", "append the JSON report to this file (array of runs)")
	flag.Parse()

	if *chaos && (!*spawn || *walPath == "") {
		fmt.Fprintln(os.Stderr, "psload: -chaos requires -spawn and -wal")
		os.Exit(2)
	}
	ratios, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psload: %v\n", err)
		os.Exit(2)
	}

	h := &harness{
		base:    "http://" + *addr,
		clients: *clients,
		ratios:  ratios,
		seed:    *seed,
		acked:   map[uint64]bool{},
	}

	var srv *serverProc
	if *spawn {
		srv = &serverProc{
			bin: *psserve, addr: *addr, program: *program, wal: *walPath,
			maxInFlight: *maxInFlight, maxQueue: *maxQueue, shards: *shards,
		}
		if err := srv.start(); err != nil {
			fmt.Fprintf(os.Stderr, "psload: spawn: %v\n", err)
			os.Exit(1)
		}
		defer srv.kill()
		if err := h.waitHealthy(10 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "psload: server never became healthy: %v\n", err)
			os.Exit(1)
		}
	}

	rep := report{
		Workload: *label, Clients: *clients, Mix: *mix, Chaos: *chaos,
	}
	start := time.Now()
	if *chaos {
		err = h.runChaos(srv, *duration, &rep)
	} else {
		// QUEL range declaration for the query mix (the chaos path
		// declares its own, per server incarnation).
		h.post("/v1/quel", `{"stmt":"range of i is Item"}`)
		h.runLoad(*duration)
	}
	rep.DurationMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		fmt.Fprintf(os.Stderr, "psload: %v\n", err)
		os.Exit(1)
	}

	h.fill(&rep)
	if sn, err := h.serverMetrics(); err == nil {
		rep.GroupCommits = sn.Server.GroupCommits
		rep.GroupWaiters = sn.Server.GroupWaiters
		rep.WALAppends = sn.Durability.WALAppends
		rep.WALSyncs = sn.Durability.WALSyncs
	}

	if *spawn {
		srv.terminate(15 * time.Second)
	}

	text, _ := json.MarshalIndent(&rep, "", "  ")
	fmt.Println(string(text))
	if *out != "" {
		// The report file is an array of runs: successive invocations
		// (overload pass, chaos pass, ...) append to it.
		runs := []report{}
		if prev, err := os.ReadFile(*out); err == nil {
			_ = json.Unmarshal(prev, &runs)
		}
		runs = append(runs, rep)
		all, _ := json.MarshalIndent(runs, "", "  ")
		if err := os.WriteFile(*out, append(all, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "psload: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if rep.OracleMissing > 0 || (rep.Chaos && !rep.AuditClean) {
		fmt.Fprintln(os.Stderr, "psload: FAIL — durability oracle violated")
		os.Exit(1)
	}
}

// report is the BENCH_8.json shape.
type report struct {
	Workload         string  `json:"workload"`
	Clients          int     `json:"clients"`
	Mix              string  `json:"mix"`
	DurationMS       float64 `json:"duration_ms"`
	Ops              int64   `json:"ops"`
	OK               int64   `json:"ok"`
	Rejected         int64   `json:"rejected"` // shed with 429
	Errors           int64   `json:"errors"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	P50MS            float64 `json:"p50_ms"`
	P99MS            float64 `json:"p99_ms"`
	GroupCommits     int64   `json:"group_commits"`
	GroupWaiters     int64   `json:"group_waiters"`
	WALAppends       int64   `json:"wal_appends"`
	WALSyncs         int64   `json:"wal_syncs"`
	Chaos            bool    `json:"chaos"`
	RecoveryWallMS   float64 `json:"recovery_wall_ms,omitempty"`   // kill → healthy again
	RecoveryReplayMS float64 `json:"recovery_replay_ms,omitempty"` // WAL replay inside Load
	RecoveredTxns    int     `json:"recovered_txns,omitempty"`
	OracleAcked      int     `json:"oracle_acked,omitempty"` // live acked assertions checked
	OracleMissing    int     `json:"oracle_missing"`         // acked but absent after recovery (must be 0)
	AuditClean       bool    `json:"audit_clean"`
}

// harness drives the load and keeps the acknowledgement oracle.
type harness struct {
	base    string
	clients int
	ratios  [3]int // assert, retract, query
	seed    int64

	ops      atomic.Int64
	ok       atomic.Int64
	rejected atomic.Int64
	errors   atomic.Int64

	mu        sync.Mutex
	latencies []float64       // ms
	acked     map[uint64]bool // acked tuple IDs still live (not acked-retracted)

	httpc *http.Client
}

func (h *harness) client() *http.Client {
	if h.httpc == nil {
		h.httpc = &http.Client{Timeout: 30 * time.Second}
	}
	return h.httpc
}

func (h *harness) waitHealthy(d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := h.client().Get(h.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("healthz kept failing")
			}
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// post sends one JSON request, records latency and outcome, and
// reports whether it was acknowledged with 200.
func (h *harness) post(path, body string) bool {
	ok, _ := h.postIDs(path, body)
	return ok
}

// postIDs is post plus the batch response's minted tuple IDs — the
// currency of the acknowledgement oracle.
func (h *harness) postIDs(path, body string) (bool, []uint64) {
	t0 := time.Now()
	resp, err := h.client().Post(h.base+path, "application/json", strings.NewReader(body))
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	h.ops.Add(1)
	h.mu.Lock()
	h.latencies = append(h.latencies, ms)
	h.mu.Unlock()
	if err != nil {
		h.errors.Add(1)
		return false, nil
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		h.ok.Add(1)
		var out struct {
			IDs []uint64 `json:"ids"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return true, out.IDs
	case http.StatusTooManyRequests:
		h.rejected.Add(1)
		// Shed: back off briefly and let the retry happen organically
		// on the next loop iteration.
		time.Sleep(5 * time.Millisecond)
		return false, nil
	default:
		h.errors.Add(1)
		return false, nil
	}
}

func (h *harness) get(path string) (int, []byte) {
	resp, err := h.client().Get(h.base + path)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, []byte(buf.String())
}

// runLoad drives the mixed workload for d across h.clients goroutines.
func (h *harness) runLoad(d time.Duration) {
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < h.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.seed + int64(c)))
			next := uint64(c)<<32 | 1 // per-client attribute-id space
			var mine []uint64         // this client's live acked tuple IDs
			for time.Now().Before(stop) {
				p := rng.Intn(100)
				switch {
				case p < h.ratios[0] || len(mine) == 0 && p < h.ratios[0]+h.ratios[1]:
					id := next
					next++
					qty := rng.Intn(100)
					ok, ids := h.postIDs("/v1/batch", fmt.Sprintf(
						`{"ops":[{"op":"assert","class":"Item","values":[%d,%d]}]}`, id, qty))
					if ok && len(ids) == 1 {
						mine = append(mine, ids[0])
						h.mu.Lock()
						h.acked[ids[0]] = true
						h.mu.Unlock()
					}
				case p < h.ratios[0]+h.ratios[1]:
					i := rng.Intn(len(mine))
					tid := mine[i]
					if h.post("/v1/batch", fmt.Sprintf(
						`{"ops":[{"op":"retract","class":"Item","id":%d}]}`, tid)) {
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						h.mu.Lock()
						delete(h.acked, tid)
						h.mu.Unlock()
					}
				default:
					if rng.Intn(2) == 0 {
						h.get("/v1/wm")
						h.ops.Add(1)
						h.ok.Add(1)
					} else {
						h.post("/v1/quel", `{"stmt":"retrieve (i.id)"}`)
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// runChaos is the kill-and-recover drill: load, SIGKILL mid-flight,
// restart, measure recovery, check the acknowledgement oracle and the
// integrity audit, then finish the load on the recovered server.
func (h *harness) runChaos(srv *serverProc, d time.Duration, rep *report) error {
	// QUEL range declaration for the query mix, session state on the
	// first server incarnation.
	h.post("/v1/quel", `{"stmt":"range of i is Item"}`)
	h.runLoad(d / 2)

	if err := srv.kill(); err != nil {
		return fmt.Errorf("chaos kill: %w", err)
	}
	t0 := time.Now()
	if err := srv.start(); err != nil {
		return fmt.Errorf("chaos restart: %w", err)
	}
	if err := h.waitHealthy(30 * time.Second); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	rep.RecoveryWallMS = float64(time.Since(t0).Nanoseconds()) / 1e6

	if code, body := h.get("/v1/recovery"); code == http.StatusOK {
		var rec struct {
			Recovered bool  `json:"recovered"`
			Txns      int   `json:"txns"`
			ElapsedNS int64 `json:"elapsed_ns"`
		}
		if json.Unmarshal(body, &rec) == nil {
			if !rec.Recovered {
				return fmt.Errorf("server restarted without recovering the WAL")
			}
			rep.RecoveredTxns = rec.Txns
			rep.RecoveryReplayMS = float64(rec.ElapsedNS) / 1e6
		}
	}

	missing, checked, err := h.checkOracle()
	if err != nil {
		return err
	}
	rep.OracleAcked = checked
	rep.OracleMissing = missing

	rep.AuditClean = h.auditClean()

	// Finish the load on the recovered incarnation: service must be
	// fully writable again after recovery.
	h.post("/v1/quel", `{"stmt":"range of i is Item"}`)
	h.runLoad(d / 2)
	return nil
}

// checkOracle fetches the recovered WM and verifies every acked-live
// assertion survived. Extra tuples are legal (committed but unacked at
// the kill); missing acked tuples are a durability violation.
func (h *harness) checkOracle() (missing, checked int, err error) {
	code, body := h.get("/v1/wm?class=Item")
	if code != http.StatusOK {
		return 0, 0, fmt.Errorf("oracle: /v1/wm returned %d", code)
	}
	var wm struct {
		Tuples []string `json:"tuples"`
	}
	if err := json.Unmarshal(body, &wm); err != nil {
		return 0, 0, fmt.Errorf("oracle: %w", err)
	}
	live := map[uint64]bool{}
	for _, t := range wm.Tuples {
		// WMClass renders "id: (v, ...)".
		if i := strings.IndexByte(t, ':'); i > 0 {
			if id, err := strconv.ParseUint(t[:i], 10, 64); err == nil {
				live[id] = true
			}
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range h.acked {
		checked++
		if !live[id] {
			missing++
		}
	}
	return missing, checked, nil
}

func (h *harness) auditClean() bool {
	resp, err := h.client().Post(h.base+"/v1/audit", "application/json", strings.NewReader(`{}`))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var out struct {
		Clean bool `json:"clean"`
	}
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK && out.Clean
}

type metricsSnapshot struct {
	Server struct {
		GroupCommits int64
		GroupWaiters int64
	}
	Durability struct {
		WALAppends int64
		WALSyncs   int64
	}
}

func (h *harness) serverMetrics() (*metricsSnapshot, error) {
	code, body := h.get("/v1/metrics")
	if code != http.StatusOK {
		return nil, fmt.Errorf("metrics: %d", code)
	}
	var sn metricsSnapshot
	if err := json.Unmarshal(body, &sn); err != nil {
		return nil, err
	}
	return &sn, nil
}

func (h *harness) fill(rep *report) {
	rep.Ops = h.ops.Load()
	rep.OK = h.ok.Load()
	rep.Rejected = h.rejected.Load()
	rep.Errors = h.errors.Load()
	if rep.DurationMS > 0 {
		rep.ThroughputPerSec = float64(rep.OK) / (rep.DurationMS / 1000)
	}
	h.mu.Lock()
	lats := append([]float64(nil), h.latencies...)
	h.mu.Unlock()
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.P50MS = lats[len(lats)/2]
		rep.P99MS = lats[len(lats)*99/100]
	}
	if !rep.Chaos {
		rep.AuditClean = h.auditClean()
	}
}

// serverProc manages a spawned psserve process.
type serverProc struct {
	bin, addr, program, wal string
	maxInFlight, maxQueue   int
	shards                  int
	cmd                     *exec.Cmd
}

func (p *serverProc) start() error {
	cmd := exec.Command(p.bin,
		"-addr", p.addr, "-program", p.program, "-wal", p.wal,
		"-wal-sync", "group",
		"-max-inflight", strconv.Itoa(p.maxInFlight),
		"-max-queue", strconv.Itoa(p.maxQueue),
		"-shards", strconv.Itoa(p.shards),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	p.cmd = cmd
	return nil
}

// kill SIGKILLs the server — the chaos event. No drain, no checkpoint:
// whatever reached the log is all that survives.
func (p *serverProc) kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	if err := p.cmd.Process.Kill(); err != nil && !strings.Contains(err.Error(), "already finished") {
		return err
	}
	_ = p.cmd.Wait()
	p.cmd = nil
	return nil
}

// terminate SIGTERMs the server and waits for the graceful drain.
func (p *serverProc) terminate(d time.Duration) {
	if p.cmd == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = p.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		_ = p.cmd.Process.Kill()
	}
	p.cmd = nil
}

func parseMix(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("mix %q: want assert,retract,query", s)
	}
	var r [3]int
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return r, fmt.Errorf("mix %q: bad component %q", s, p)
		}
		r[i] = n
		sum += n
	}
	if sum != 100 {
		return r, fmt.Errorf("mix %q: components must sum to 100, got %d", s, sum)
	}
	return r, nil
}
