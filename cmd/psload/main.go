// Command psload is the load and chaos harness for psserve: many
// concurrent clients drive a mixed assert/retract/query workload over
// HTTP, measuring throughput, p50/p99 latency, and shed (429) rates.
//
// Usage:
//
//	psload -spawn -psserve bin/psserve -program testdata/server.ops -wal /tmp/wm.wal \
//	       -clients 8 -duration 10s [-chaos] [-out BENCH_8.json]
//
// With -spawn, psload launches and manages the server process itself;
// without it, point -addr at a running psserve. With -chaos, the
// harness SIGKILLs the server mid-load, restarts it, measures recovery
// time, and then checks the acknowledgement oracle: every assertion
// the server acknowledged before the kill (and not since retracted)
// must be present in the recovered working memory — acknowledged means
// durable, no exceptions — and a full integrity audit must come back
// clean. Results land in -out as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "psserve address")
	clients := flag.Int("clients", 8, "concurrent load clients")
	duration := flag.Duration("duration", 5*time.Second, "total load duration")
	mix := flag.String("mix", "70,10,20", "assert,retract,query percentages")
	spawn := flag.Bool("spawn", false, "launch and manage the server process")
	psserve := flag.String("psserve", "psserve", "psserve binary (with -spawn)")
	program := flag.String("program", "testdata/server.ops", "program file (with -spawn)")
	walPath := flag.String("wal", "", "WAL file (with -spawn; required for -chaos)")
	maxInFlight := flag.Int("max-inflight", 32, "server max in-flight (with -spawn)")
	maxQueue := flag.Int("max-queue", 128, "server max queue (with -spawn)")
	chaos := flag.Bool("chaos", false, "SIGKILL the server mid-load, restart, verify recovery (needs -spawn and -wal)")
	failover := flag.Bool("chaos-failover", false, "run the replication failover drill: kill the primary, promote the replica, fence and rejoin the old primary (needs -spawn and -wal)")
	cycles := flag.Int("cycles", 5, "kill→promote→rejoin cycles (with -chaos-failover)")
	replicaAddr := flag.String("replica-addr", "127.0.0.1:8373", "replica address (with -chaos-failover)")
	shards := flag.Int("shards", 0, "forwarded to the spawned psserve as -shards (with -spawn)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	label := flag.String("label", "mixed", "workload label recorded in the report")
	out := flag.String("out", "", "append the JSON report to this file (array of runs)")
	flag.Parse()

	if *chaos && (!*spawn || *walPath == "") {
		fmt.Fprintln(os.Stderr, "psload: -chaos requires -spawn and -wal")
		os.Exit(2)
	}
	if *failover && (!*spawn || *walPath == "") {
		fmt.Fprintln(os.Stderr, "psload: -chaos-failover requires -spawn and -wal")
		os.Exit(2)
	}
	if *failover && *chaos {
		fmt.Fprintln(os.Stderr, "psload: -chaos and -chaos-failover are mutually exclusive")
		os.Exit(2)
	}
	ratios, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psload: %v\n", err)
		os.Exit(2)
	}

	h := &harness{
		base:    "http://" + *addr,
		clients: *clients,
		ratios:  ratios,
		seed:    *seed,
		acked:   map[uint64]bool{},
	}

	var srv, srvB *serverProc
	if *spawn {
		wal := *walPath
		if *failover {
			// Each node of the replicated pair keeps its own log for its
			// whole lifetime, across role swaps.
			wal = *walPath + ".a"
		}
		srv = &serverProc{
			bin: *psserve, addr: *addr, program: *program, wal: wal,
			maxInFlight: *maxInFlight, maxQueue: *maxQueue, shards: *shards,
		}
		if err := srv.start(); err != nil {
			fmt.Fprintf(os.Stderr, "psload: spawn: %v\n", err)
			os.Exit(1)
		}
		defer srv.kill()
		if err := h.waitHealthy(10 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "psload: server never became healthy: %v\n", err)
			os.Exit(1)
		}
		if *failover {
			srvB = &serverProc{
				bin: *psserve, addr: *replicaAddr, program: *program, wal: *walPath + ".b",
				maxInFlight: *maxInFlight, maxQueue: *maxQueue, shards: *shards,
				replicaOf: "http://" + *addr,
			}
			if err := srvB.start(); err != nil {
				fmt.Fprintf(os.Stderr, "psload: spawn replica: %v\n", err)
				os.Exit(1)
			}
			defer srvB.kill()
			if err := h.waitHealthyAt("http://"+*replicaAddr, 10*time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "psload: replica never became healthy: %v\n", err)
				os.Exit(1)
			}
		}
	}

	rep := report{
		Workload: *label, Clients: *clients, Mix: *mix,
		Chaos: *chaos || *failover, Failover: *failover,
	}
	start := time.Now()
	if *failover {
		err = h.runFailover([2]*serverProc{srv, srvB}, *cycles, *duration, &rep)
	} else if *chaos {
		err = h.runChaos(srv, *duration, &rep)
	} else {
		// QUEL range declaration for the query mix (the chaos path
		// declares its own, per server incarnation).
		h.post("/v1/quel", `{"stmt":"range of i is Item"}`)
		h.runLoad(*duration)
	}
	rep.DurationMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		fmt.Fprintf(os.Stderr, "psload: %v\n", err)
		os.Exit(1)
	}

	h.fill(&rep)
	if sn, err := h.serverMetrics(); err == nil {
		rep.GroupCommits = sn.Server.GroupCommits
		rep.GroupWaiters = sn.Server.GroupWaiters
		rep.WALAppends = sn.Durability.WALAppends
		rep.WALSyncs = sn.Durability.WALSyncs
	}

	if *spawn {
		srv.terminate(15 * time.Second)
		if srvB != nil {
			srvB.terminate(15 * time.Second)
		}
	}

	text, _ := json.MarshalIndent(&rep, "", "  ")
	fmt.Println(string(text))
	if *out != "" {
		// The report file is an array of runs: successive invocations
		// (overload pass, chaos pass, ...) append to it.
		runs := []report{}
		if prev, err := os.ReadFile(*out); err == nil {
			_ = json.Unmarshal(prev, &runs)
		}
		runs = append(runs, rep)
		all, _ := json.MarshalIndent(runs, "", "  ")
		if err := os.WriteFile(*out, append(all, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "psload: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if rep.OracleMissing > 0 || (rep.Chaos && !rep.AuditClean) {
		fmt.Fprintln(os.Stderr, "psload: FAIL — durability oracle violated")
		os.Exit(1)
	}
	if rep.FenceLeaks > 0 || rep.RejoinMismatch > 0 {
		fmt.Fprintln(os.Stderr, "psload: FAIL — failover drill violated (fence leak or rejoin divergence)")
		os.Exit(1)
	}
}

// report is the BENCH_8.json shape.
type report struct {
	Workload         string  `json:"workload"`
	Clients          int     `json:"clients"`
	Mix              string  `json:"mix"`
	DurationMS       float64 `json:"duration_ms"`
	Ops              int64   `json:"ops"`
	OK               int64   `json:"ok"`
	Rejected         int64   `json:"rejected"` // shed with 429
	Errors           int64   `json:"errors"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	P50MS            float64 `json:"p50_ms"`
	P99MS            float64 `json:"p99_ms"`
	GroupCommits     int64   `json:"group_commits"`
	GroupWaiters     int64   `json:"group_waiters"`
	WALAppends       int64   `json:"wal_appends"`
	WALSyncs         int64   `json:"wal_syncs"`
	Chaos            bool    `json:"chaos"`
	RecoveryWallMS   float64 `json:"recovery_wall_ms,omitempty"`   // kill → healthy again
	RecoveryReplayMS float64 `json:"recovery_replay_ms,omitempty"` // WAL replay inside Load
	RecoveredTxns    int     `json:"recovered_txns,omitempty"`
	OracleAcked      int     `json:"oracle_acked,omitempty"` // live acked assertions checked
	OracleMissing    int     `json:"oracle_missing"`         // acked but absent after recovery (must be 0)
	AuditClean       bool    `json:"audit_clean"`

	// Failover drill (-chaos-failover) results.
	Failover       bool    `json:"failover,omitempty"`
	Failovers      int     `json:"failovers,omitempty"`       // completed kill→promote→rejoin cycles
	FailoverP50MS  float64 `json:"failover_p50_ms,omitempty"` // kill → promoted and writable
	FailoverMaxMS  float64 `json:"failover_max_ms,omitempty"`
	LagP50Bytes    int64   `json:"lag_p50_bytes"` // replica lag sampled under load
	LagP99Bytes    int64   `json:"lag_p99_bytes"`
	FencedAppends  int     `json:"fenced_appends,omitempty"` // stale-epoch appends rejected with 409
	FenceLeaks     int     `json:"fence_leaks"`              // stale-epoch appends accepted (must be 0)
	RejoinMismatch int     `json:"rejoin_mismatch"`          // WM/conflict divergences after rejoin (must be 0)
}

// harness drives the load and keeps the acknowledgement oracle.
type harness struct {
	base    string
	clients int
	ratios  [3]int // assert, retract, query
	seed    int64

	ops      atomic.Int64
	ok       atomic.Int64
	rejected atomic.Int64
	errors   atomic.Int64

	mu        sync.Mutex
	latencies []float64       // ms
	acked     map[uint64]bool // acked tuple IDs still live (not acked-retracted)

	httpc *http.Client
}

func (h *harness) client() *http.Client {
	if h.httpc == nil {
		h.httpc = &http.Client{Timeout: 30 * time.Second}
	}
	return h.httpc
}

// retryDelay reads the server's backoff hint on a 429: the
// millisecond-precision Retry-After-Ms header when present, the coarse
// Retry-After (seconds) otherwise, a small default when neither is
// there. A ±25% local jitter keeps clients that shared one hint from
// re-synchronizing, and a cap keeps a bad hint from stalling the
// harness.
func retryDelay(resp *http.Response) time.Duration {
	d := 5 * time.Millisecond
	if ms := resp.Header.Get("Retry-After-Ms"); ms != "" {
		if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n > 0 {
			d = time.Duration(n) * time.Millisecond
		}
	} else if sec := resp.Header.Get("Retry-After"); sec != "" {
		if n, err := strconv.ParseInt(sec, 10, 64); err == nil && n > 0 {
			d = time.Duration(n) * time.Second
		}
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d*3/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

func (h *harness) waitHealthy(d time.Duration) error {
	return h.waitHealthyAt(h.base, d)
}

func (h *harness) waitHealthyAt(base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := h.client().Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("healthz kept failing")
			}
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// post sends one JSON request, records latency and outcome, and
// reports whether it was acknowledged with 200.
func (h *harness) post(path, body string) bool {
	ok, _ := h.postIDs(path, body)
	return ok
}

// postIDs is post plus the batch response's minted tuple IDs — the
// currency of the acknowledgement oracle.
func (h *harness) postIDs(path, body string) (bool, []uint64) {
	t0 := time.Now()
	resp, err := h.client().Post(h.base+path, "application/json", strings.NewReader(body))
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	h.ops.Add(1)
	h.mu.Lock()
	h.latencies = append(h.latencies, ms)
	h.mu.Unlock()
	if err != nil {
		h.errors.Add(1)
		return false, nil
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		h.ok.Add(1)
		var out struct {
			IDs []uint64 `json:"ids"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return true, out.IDs
	case http.StatusTooManyRequests:
		h.rejected.Add(1)
		// Shed: honor the server's Retry-After hint (with local jitter)
		// and let the retry happen organically on the next loop
		// iteration.
		time.Sleep(retryDelay(resp))
		return false, nil
	default:
		h.errors.Add(1)
		return false, nil
	}
}

func (h *harness) get(path string) (int, []byte) {
	return h.getAt(h.base, path)
}

func (h *harness) getAt(base, path string) (int, []byte) {
	resp, err := h.client().Get(base + path)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, []byte(buf.String())
}

// runLoad drives the mixed workload for d across h.clients goroutines.
func (h *harness) runLoad(d time.Duration) {
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < h.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.seed + int64(c)))
			next := uint64(c)<<32 | 1 // per-client attribute-id space
			var mine []uint64         // this client's live acked tuple IDs
			for time.Now().Before(stop) {
				p := rng.Intn(100)
				switch {
				case p < h.ratios[0] || len(mine) == 0 && p < h.ratios[0]+h.ratios[1]:
					id := next
					next++
					qty := rng.Intn(100)
					ok, ids := h.postIDs("/v1/batch", fmt.Sprintf(
						`{"ops":[{"op":"assert","class":"Item","values":[%d,%d]}]}`, id, qty))
					if ok && len(ids) == 1 {
						mine = append(mine, ids[0])
						h.mu.Lock()
						h.acked[ids[0]] = true
						h.mu.Unlock()
					}
				case p < h.ratios[0]+h.ratios[1]:
					i := rng.Intn(len(mine))
					tid := mine[i]
					if h.post("/v1/batch", fmt.Sprintf(
						`{"ops":[{"op":"retract","class":"Item","id":%d}]}`, tid)) {
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						h.mu.Lock()
						delete(h.acked, tid)
						h.mu.Unlock()
					}
				default:
					if rng.Intn(2) == 0 {
						h.get("/v1/wm")
						h.ops.Add(1)
						h.ok.Add(1)
					} else {
						h.post("/v1/quel", `{"stmt":"retrieve (i.id)"}`)
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// runChaos is the kill-and-recover drill: load, SIGKILL mid-flight,
// restart, measure recovery, check the acknowledgement oracle and the
// integrity audit, then finish the load on the recovered server.
func (h *harness) runChaos(srv *serverProc, d time.Duration, rep *report) error {
	// QUEL range declaration for the query mix, session state on the
	// first server incarnation.
	h.post("/v1/quel", `{"stmt":"range of i is Item"}`)
	h.runLoad(d / 2)

	if err := srv.kill(); err != nil {
		return fmt.Errorf("chaos kill: %w", err)
	}
	t0 := time.Now()
	if err := srv.start(); err != nil {
		return fmt.Errorf("chaos restart: %w", err)
	}
	if err := h.waitHealthy(30 * time.Second); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	rep.RecoveryWallMS = float64(time.Since(t0).Nanoseconds()) / 1e6

	if code, body := h.get("/v1/recovery"); code == http.StatusOK {
		var rec struct {
			Recovered bool  `json:"recovered"`
			Txns      int   `json:"txns"`
			ElapsedNS int64 `json:"elapsed_ns"`
		}
		if json.Unmarshal(body, &rec) == nil {
			if !rec.Recovered {
				return fmt.Errorf("server restarted without recovering the WAL")
			}
			rep.RecoveredTxns = rec.Txns
			rep.RecoveryReplayMS = float64(rec.ElapsedNS) / 1e6
		}
	}

	missing, checked, err := h.checkOracle()
	if err != nil {
		return err
	}
	rep.OracleAcked = checked
	rep.OracleMissing = missing

	rep.AuditClean = h.auditClean()

	// Finish the load on the recovered incarnation: service must be
	// fully writable again after recovery.
	h.post("/v1/quel", `{"stmt":"range of i is Item"}`)
	h.runLoad(d / 2)
	return nil
}

// runFailover is the log-shipping failover drill. Each cycle: load the
// primary while sampling replica lag, quiesce, wait for verified
// catch-up (the replica mirrors the primary's exact epoch and offset),
// SIGKILL the primary, detect the death with consecutive failed health
// probes, promote the replica, redirect clients, and check the
// acknowledgement oracle and audit on the new primary. Then the old
// primary is resurrected as a primary and every append tagged with the
// promoted epoch must be fenced with 409; finally it rejoins as a
// replica of the new primary and both nodes' working memories and
// conflict sets must compare byte-identical. Roles swap and the next
// cycle runs the other way.
func (h *harness) runFailover(procs [2]*serverProc, cycles int, d time.Duration, rep *report) error {
	per := d / time.Duration(cycles)
	if per <= 0 {
		per = time.Second
	}
	base := func(p *serverProc) string { return "http://" + p.addr }
	var lagSamples []int64
	var failovers []float64
	clean := true
	pi := 0
	for cycle := 0; cycle < cycles; cycle++ {
		pri, sec := procs[pi], procs[1-pi]
		h.base = base(pri)
		h.post("/v1/quel", `{"stmt":"range of i is Item"}`)

		// Load the primary while a sampler polls the replica's lag.
		stopSample := make(chan struct{})
		var sampleWG sync.WaitGroup
		sampleWG.Add(1)
		go func() {
			defer sampleWG.Done()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopSample:
					return
				case <-tick.C:
					if st, err := h.replicationOf(base(sec)); err == nil && st.Role == "replica" {
						lagSamples = append(lagSamples, st.LagBytes)
					}
				}
			}
		}()
		h.runLoad(per)
		close(stopSample)
		sampleWG.Wait()

		// Verified catch-up before the kill: with asynchronous shipping,
		// an acked commit that never reached the replica would be
		// legitimately lost — the drill's zero-loss oracle is only
		// meaningful once the mirror is exact.
		if err := h.waitCatchup(base(pri), base(sec), 30*time.Second); err != nil {
			return fmt.Errorf("cycle %d catch-up: %w", cycle, err)
		}

		t0 := time.Now()
		if err := pri.kill(); err != nil {
			return fmt.Errorf("cycle %d kill: %w", cycle, err)
		}
		// Automatic failover: promote only after consecutive failed
		// health probes, the drill's stand-in for a failure detector.
		if err := h.waitDead(base(pri), 3, 10*time.Second); err != nil {
			return fmt.Errorf("cycle %d: killed primary kept answering probes: %w", cycle, err)
		}
		newEpoch, err := h.promote(base(sec))
		if err != nil {
			return fmt.Errorf("cycle %d promote: %w", cycle, err)
		}
		failovers = append(failovers, float64(time.Since(t0).Nanoseconds())/1e6)

		// Redirect clients to the new primary and run the oracle there.
		h.base = base(sec)
		missing, checked, err := h.checkOracle()
		if err != nil {
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		rep.OracleAcked = checked
		rep.OracleMissing += missing
		clean = clean && h.auditClean()

		// Resurrect the old primary as a primary — the split-brain
		// scenario. Its log is stuck at the retired epoch, so every
		// append tagged with the promoted epoch must be fenced.
		pri.replicaOf = ""
		if err := pri.start(); err != nil {
			return fmt.Errorf("cycle %d resurrect: %w", cycle, err)
		}
		if err := h.waitHealthyAt(base(pri), 30*time.Second); err != nil {
			return fmt.Errorf("cycle %d resurrect: %w", cycle, err)
		}
		for i := 0; i < 5; i++ {
			code, stale := h.fencedAppend(base(pri), newEpoch)
			if code == http.StatusConflict && stale {
				rep.FencedAppends++
			} else {
				rep.FenceLeaks++
			}
		}

		// Demote: restart the old primary as a replica of the new one
		// and wait until it has verifiably caught up.
		if err := pri.kill(); err != nil {
			return fmt.Errorf("cycle %d demote: %w", cycle, err)
		}
		pri.replicaOf = base(sec)
		if err := pri.start(); err != nil {
			return fmt.Errorf("cycle %d rejoin: %w", cycle, err)
		}
		if err := h.waitHealthyAt(base(pri), 30*time.Second); err != nil {
			return fmt.Errorf("cycle %d rejoin: %w", cycle, err)
		}
		if err := h.waitCatchup(base(sec), base(pri), 30*time.Second); err != nil {
			return fmt.Errorf("cycle %d rejoin catch-up: %w", cycle, err)
		}
		rep.RejoinMismatch += h.compareNodes(base(sec), base(pri))
		pi = 1 - pi
	}

	rep.Failovers = cycles
	rep.AuditClean = clean
	sort.Float64s(failovers)
	if len(failovers) > 0 {
		rep.FailoverP50MS = failovers[len(failovers)/2]
		rep.FailoverMaxMS = failovers[len(failovers)-1]
	}
	if len(lagSamples) > 0 {
		sort.Slice(lagSamples, func(i, j int) bool { return lagSamples[i] < lagSamples[j] })
		rep.LagP50Bytes = lagSamples[len(lagSamples)/2]
		rep.LagP99Bytes = lagSamples[len(lagSamples)*99/100]
	}
	return nil
}

// replState is the /v1/replication response slice the drill reads.
type replState struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Offset   int64  `json:"offset"`
	LagBytes int64  `json:"lag_bytes"`
}

func (h *harness) replicationOf(base string) (replState, error) {
	code, body := h.getAt(base, "/v1/replication")
	if code != http.StatusOK {
		return replState{}, fmt.Errorf("replication: status %d", code)
	}
	var st replState
	if err := json.Unmarshal(body, &st); err != nil {
		return replState{}, err
	}
	return st, nil
}

// waitCatchup blocks until the replica's applied position equals the
// primary's live position — verified catch-up, not a lag heuristic.
func (h *harness) waitCatchup(primary, replica string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		ps, perr := h.replicationOf(primary)
		rs, rerr := h.replicationOf(replica)
		if perr == nil && rerr == nil && rs.Role == "replica" &&
			rs.Epoch == ps.Epoch && rs.Offset == ps.Offset {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica at %d:%d, primary at %d:%d (perr=%v rerr=%v)",
				rs.Epoch, rs.Offset, ps.Epoch, ps.Offset, perr, rerr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitDead probes /healthz until `consecutive` probes in a row fail —
// the drill's failure detector.
func (h *harness) waitDead(base string, consecutive int, d time.Duration) error {
	deadline := time.Now().Add(d)
	fails := 0
	for {
		resp, err := h.client().Get(base + "/healthz")
		if err != nil {
			fails++
		} else {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fails = 0
			} else {
				fails++
			}
		}
		if fails >= consecutive {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("probes kept succeeding")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (h *harness) promote(base string) (uint64, error) {
	resp, err := h.client().Post(base+"/v1/promote", "application/json", strings.NewReader(`{}`))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK || !out.Promoted {
		return 0, fmt.Errorf("promote: status %d: %s", resp.StatusCode, out.Error)
	}
	return out.Epoch, nil
}

// fencedAppend sends an assert tagged with the promoted epoch to the
// resurrected old primary. A correct node rejects it 409 stale_epoch.
func (h *harness) fencedAppend(base string, epoch uint64) (code int, stale bool) {
	req, err := http.NewRequest("POST", base+"/v1/batch",
		strings.NewReader(`{"ops":[{"op":"assert","class":"Item","values":[0,0]}]}`))
	if err != nil {
		return 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Prodsys-Epoch", strconv.FormatUint(epoch, 10))
	resp, err := h.client().Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var body struct {
		StaleEpoch bool `json:"stale_epoch"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body.StaleEpoch
}

// compareNodes counts divergences between two nodes' working memories
// and conflict sets; a caught-up replica must mirror its primary
// exactly.
func (h *harness) compareNodes(a, b string) int {
	mismatch := 0
	wa, oka := h.wmFingerprint(a)
	wb, okb := h.wmFingerprint(b)
	if !oka || !okb || wa != wb {
		mismatch++
	}
	ca, sa := h.getAt(a, "/v1/conflicts")
	cb, sb := h.getAt(b, "/v1/conflicts")
	if ca != http.StatusOK || cb != http.StatusOK || string(sa) != string(sb) {
		mismatch++
	}
	return mismatch
}

// wmFingerprint renders a node's Item working memory as a sorted,
// order-independent string.
func (h *harness) wmFingerprint(base string) (string, bool) {
	code, body := h.getAt(base, "/v1/wm?class=Item")
	if code != http.StatusOK {
		return "", false
	}
	var wm struct {
		Tuples []string `json:"tuples"`
	}
	if err := json.Unmarshal(body, &wm); err != nil {
		return "", false
	}
	sort.Strings(wm.Tuples)
	return strings.Join(wm.Tuples, "\n"), true
}

// checkOracle fetches the recovered WM and verifies every acked-live
// assertion survived. Extra tuples are legal (committed but unacked at
// the kill); missing acked tuples are a durability violation.
func (h *harness) checkOracle() (missing, checked int, err error) {
	code, body := h.get("/v1/wm?class=Item")
	if code != http.StatusOK {
		return 0, 0, fmt.Errorf("oracle: /v1/wm returned %d", code)
	}
	var wm struct {
		Tuples []string `json:"tuples"`
	}
	if err := json.Unmarshal(body, &wm); err != nil {
		return 0, 0, fmt.Errorf("oracle: %w", err)
	}
	live := map[uint64]bool{}
	for _, t := range wm.Tuples {
		// WMClass renders "id: (v, ...)".
		if i := strings.IndexByte(t, ':'); i > 0 {
			if id, err := strconv.ParseUint(t[:i], 10, 64); err == nil {
				live[id] = true
			}
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range h.acked {
		checked++
		if !live[id] {
			missing++
		}
	}
	return missing, checked, nil
}

func (h *harness) auditClean() bool {
	resp, err := h.client().Post(h.base+"/v1/audit", "application/json", strings.NewReader(`{}`))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var out struct {
		Clean bool `json:"clean"`
	}
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK && out.Clean
}

type metricsSnapshot struct {
	Server struct {
		GroupCommits int64
		GroupWaiters int64
	}
	Durability struct {
		WALAppends int64
		WALSyncs   int64
	}
}

func (h *harness) serverMetrics() (*metricsSnapshot, error) {
	code, body := h.get("/v1/metrics")
	if code != http.StatusOK {
		return nil, fmt.Errorf("metrics: %d", code)
	}
	var sn metricsSnapshot
	if err := json.Unmarshal(body, &sn); err != nil {
		return nil, err
	}
	return &sn, nil
}

func (h *harness) fill(rep *report) {
	rep.Ops = h.ops.Load()
	rep.OK = h.ok.Load()
	rep.Rejected = h.rejected.Load()
	rep.Errors = h.errors.Load()
	if rep.DurationMS > 0 {
		rep.ThroughputPerSec = float64(rep.OK) / (rep.DurationMS / 1000)
	}
	h.mu.Lock()
	lats := append([]float64(nil), h.latencies...)
	h.mu.Unlock()
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.P50MS = lats[len(lats)/2]
		rep.P99MS = lats[len(lats)*99/100]
	}
	if !rep.Chaos {
		rep.AuditClean = h.auditClean()
	}
}

// serverProc manages a spawned psserve process. replicaOf, when set,
// starts the node as a warm replica of that primary; the field is
// mutated between restarts as the failover drill swaps roles.
type serverProc struct {
	bin, addr, program, wal string
	maxInFlight, maxQueue   int
	shards                  int
	replicaOf               string
	cmd                     *exec.Cmd
}

func (p *serverProc) start() error {
	args := []string{
		"-addr", p.addr, "-program", p.program, "-wal", p.wal,
		"-wal-sync", "group",
		"-max-inflight", strconv.Itoa(p.maxInFlight),
		"-max-queue", strconv.Itoa(p.maxQueue),
		"-shards", strconv.Itoa(p.shards),
	}
	if p.replicaOf != "" {
		args = append(args, "-replica-of", p.replicaOf)
	}
	cmd := exec.Command(p.bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	p.cmd = cmd
	return nil
}

// kill SIGKILLs the server — the chaos event. No drain, no checkpoint:
// whatever reached the log is all that survives.
func (p *serverProc) kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	if err := p.cmd.Process.Kill(); err != nil && !strings.Contains(err.Error(), "already finished") {
		return err
	}
	_ = p.cmd.Wait()
	p.cmd = nil
	return nil
}

// terminate SIGTERMs the server and waits for the graceful drain.
func (p *serverProc) terminate(d time.Duration) {
	if p.cmd == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = p.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		_ = p.cmd.Process.Kill()
	}
	p.cmd = nil
}

func parseMix(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("mix %q: want assert,retract,query", s)
	}
	var r [3]int
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return r, fmt.Errorf("mix %q: bad component %q", s, p)
		}
		r[i] = n
		sum += n
	}
	if sum != 100 {
		return r, fmt.Errorf("mix %q: components must sum to 100, got %d", s, sum)
	}
	return r, nil
}
