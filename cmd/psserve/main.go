// Command psserve runs a production system as a long-lived server: it
// loads an OPS5-subset program, opens a write-ahead log with group
// commit, and serves the transactional API over HTTP/JSON with
// admission control, overload shedding, read-only degradation on disk
// failure, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	psserve -program program.ops -wal wm.wal [flags]
//
// Endpoints: POST /v1/batch (assert/retract transactions), POST /v1/run
// (recognize-act to quiescence), POST /v1/quel (QUEL statements), POST
// /v1/audit (online integrity audit), GET /v1/wm, /v1/plans,
// /v1/metrics, /v1/recovery, /metricsz (text counters), /healthz
// (liveness — 200 even read-only), /readyz (readiness — 503 when
// read-only or draining).
//
// Overload: at most -max-inflight requests execute while -max-queue
// wait; beyond that requests are shed with 429 + Retry-After. SIGTERM
// stops admissions, finishes in-flight transactions under
// -drain-timeout, checkpoints, and closes the WAL — committed work is
// never lost. See docs/SERVER.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prodsys"
	"prodsys/internal/replica"
	"prodsys/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address")
	program := flag.String("program", "", "OPS5 program file to load (required)")
	walPath := flag.String("wal", "", "write-ahead log file; reopening recovers committed state")
	walSync := flag.String("wal-sync", "group", "WAL sync policy: always|interval|never|group")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint after this many logged units (0 = never)")
	matcher := flag.String("matcher", "core", "matching algorithm: rete|requery|core|core-parallel|marker|ptree")
	shards := flag.Int("shards", 0, "shard WM relations and matcher state this many ways [1,64]; 0 = PRODSYS_SHARDS or 1")
	shardWorkers := flag.Int("shard-workers", 0, "parallel match scheduler pool size; 0 = auto, negative = serial maintenance")
	maxInFlight := flag.Int("max-inflight", 32, "max concurrently executing requests")
	maxQueue := flag.Int("max-queue", 128, "max requests waiting for a slot before shedding 429")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline propagated into the engine")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight requests")
	replicaOf := flag.String("replica-of", "", "start as a warm replica of the primary at this base URL (requires -wal)")
	flag.Parse()

	if *program == "" {
		fmt.Fprintln(os.Stderr, "psserve: -program is required")
		flag.Usage()
		os.Exit(2)
	}

	sys, err := prodsys.LoadFile(*program, prodsys.Options{
		Matcher:            prodsys.Matcher(*matcher),
		Shards:             *shards,
		ShardWorkers:       *shardWorkers,
		Out:                os.Stdout,
		WALPath:            *walPath,
		WALSync:            prodsys.WALSyncMode(*walSync),
		WALCheckpointEvery: *checkpointEvery,
		ReplicaOf:          *replicaOf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "psserve: %v\n", err)
		os.Exit(1)
	}
	if rec := sys.Recovery(); rec.Recovered {
		fmt.Printf("psserve: recovered checkpoint=%v tuples=%d txns=%d ops=%d torn_tail=%v in %s\n",
			rec.Checkpoint, rec.Tuples, rec.Txns, rec.Ops, rec.TornTail, rec.Elapsed)
	}

	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
	}
	var feed *replica.Client
	if *replicaOf != "" {
		if *walPath == "" {
			fmt.Fprintln(os.Stderr, "psserve: -replica-of requires -wal (the feed mirrors into the local log)")
			os.Exit(2)
		}
		feed = replica.NewClient(sys, *replicaOf)
		feed.Logf = func(format string, args ...any) { fmt.Printf("psserve: "+format+"\n", args...) }
		feed.Start()
		// /v1/promote stops the feed client (no apply in flight) before
		// the promotion sequence runs.
		cfg.StopReplication = feed.Stop
		fmt.Printf("psserve: replica of %s\n", *replicaOf)
	}
	srv := server.New(sys, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psserve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("psserve: serving on http://%s (inflight=%d queue=%d wal=%q sync=%s)\n",
		ln.Addr(), *maxInFlight, *maxQueue, *walPath, *walSync)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case s := <-sig:
		fmt.Printf("psserve: %s — draining (deadline %s)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
		defer cancel()
		if feed != nil {
			feed.Stop()
		}
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "psserve: drain: %v\n", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = hs.Shutdown(shutCtx)
		sn := sys.Metrics().Server
		fmt.Printf("psserve: drained admitted=%d rejected=%d drained=%d group_commits=%d\n",
			sn.Admitted, sn.Rejected, sn.Drained, sn.GroupCommits)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "psserve: %v\n", err)
			os.Exit(1)
		}
	}
}
