// Package prodsys is a DBMS-backed production rule system: a Go
// reproduction of Sellis, Lin and Raschid, "Implementing Large Production
// Systems in a DBMS Environment: Concepts and Algorithms" (SIGMOD 1988).
//
// Rule programs are written in an OPS5 subset (literalize declarations,
// productions, initial facts). Working memory lives in a small relational
// engine; several interchangeable matching algorithms maintain the conflict
// set:
//
//   - MatcherRete — the classic main-memory Rete network (the AI way,
//     §2.2/§3.1);
//   - MatcherReteShared — the same network with beta-prefix sharing, the
//     multiple-query optimization the paper names as future work (§6);
//   - MatcherRequery — the simplified algorithm: no intermediate storage,
//     joins re-evaluated per update (§4.1);
//   - MatcherCore / MatcherCoreParallel — the paper's matching-pattern
//     algorithm with per-RCE supports and optional parallel propagation
//     (§4.2);
//   - MatcherMarker — POSTGRES-style Basic Locking rule indexing
//     (§2.3);
//   - MatcherPTree — Predicate Indexing through an R-tree over condition
//     rectangles (§2.3), which also answers rulebase queries.
//
// Execution is either serial OPS5-style or concurrent: every applicable
// instantiation runs as a transaction under two-phase locking with the
// commit point after maintenance, per §5.
//
// Quick start:
//
//	sys, err := prodsys.Load(src, prodsys.Options{})
//	res, err := sys.Run()
//	fmt.Println(sys.WM())
package prodsys

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"prodsys/internal/audit"
	"prodsys/internal/conflict"
	"prodsys/internal/core"
	"prodsys/internal/engine"
	"prodsys/internal/fsx"
	"prodsys/internal/joiner"
	"prodsys/internal/lang"
	"prodsys/internal/marker"
	"prodsys/internal/match"
	"prodsys/internal/metrics"
	"prodsys/internal/ptree"
	"prodsys/internal/quel"
	"prodsys/internal/relation"
	"prodsys/internal/requery"
	"prodsys/internal/rete"
	"prodsys/internal/rules"
	"prodsys/internal/trace"
	"prodsys/internal/value"
	"prodsys/internal/view"
	"prodsys/internal/wal"
)

// Matcher selects the matching algorithm.
type Matcher string

// The available matchers.
const (
	MatcherRete         Matcher = "rete"
	MatcherReteShared   Matcher = "rete-shared"
	MatcherRequery      Matcher = "requery"
	MatcherCore         Matcher = "core"
	MatcherCoreParallel Matcher = "core-parallel"
	MatcherMarker       Matcher = "marker"
	MatcherPTree        Matcher = "ptree"
)

// Matchers lists every available matcher kind.
func Matchers() []Matcher {
	return []Matcher{MatcherRete, MatcherReteShared, MatcherRequery, MatcherCore, MatcherCoreParallel, MatcherMarker, MatcherPTree}
}

// Strategy selects the conflict-resolution strategy for serial runs.
type Strategy string

// The available strategies.
const (
	// StrategyFIFO fires the oldest instantiation first (default).
	StrategyFIFO Strategy = "fifo"
	// StrategyLEX prefers instantiations supported by recent WM, OPS5's
	// LEX ordering.
	StrategyLEX Strategy = "lex"
	// StrategyPriority orders by declared rule priority.
	StrategyPriority Strategy = "priority"
	// StrategyRandom picks uniformly (seeded by Options.Seed).
	StrategyRandom Strategy = "random"
)

// Strategies lists every available conflict-resolution strategy.
func Strategies() []Strategy {
	return []Strategy{StrategyFIFO, StrategyLEX, StrategyPriority, StrategyRandom}
}

// Storage selects the tuple storage backend serving working memory.
type Storage string

// The available storage backends.
const (
	// StorageRow is the row-major backend: a TupleID-keyed map with
	// hash+ordered secondary indexes — best for tuple-at-a-time updates
	// and point access (default).
	StorageRow Storage = Storage(relation.StorageRow)
	// StorageColumnar is the column-major backend: per-attribute value
	// arrays with bulk appends, optimized for set-oriented Batch /
	// ApplyDelta maintenance.
	StorageColumnar Storage = Storage(relation.StorageColumnar)
)

// Storages lists every available storage backend.
func Storages() []Storage {
	kinds := relation.StorageKinds()
	out := make([]Storage, len(kinds))
	for i, k := range kinds {
		out[i] = Storage(k)
	}
	return out
}

// Planner selects how the joiner-based matchers order LHS joins.
type Planner string

// The available planners.
const (
	// PlannerCost compiles greedy cost-based join orders from relation
	// statistics and caches them per (rule, delta class), invalidating
	// on cardinality drift (default).
	PlannerCost Planner = "cost"
	// PlannerFixed evaluates condition elements in LHS source order —
	// the pre-planner behavior and the crosscheck oracle.
	PlannerFixed Planner = "fixed"
)

// Planners lists every available planner mode.
func Planners() []Planner {
	return []Planner{PlannerCost, PlannerFixed}
}

// Sentinel errors; returned errors wrap these, test with errors.Is.
var (
	// ErrUnknownClass marks an operation naming an undeclared WM class.
	ErrUnknownClass = engine.ErrUnknownClass
	// ErrUnknownMatcher marks an Options.Matcher not in Matchers().
	ErrUnknownMatcher = errors.New("unknown matcher")
	// ErrUnknownStrategy marks an Options.Strategy not in Strategies().
	ErrUnknownStrategy = errors.New("unknown strategy")
	// ErrUnknownStorage marks an Options.Storage not in Storages().
	ErrUnknownStorage = relation.ErrUnknownStorage
	// ErrUnknownPlanner marks an Options.Planner not in Planners().
	ErrUnknownPlanner = errors.New("unknown planner")
	// ErrNoPlanner marks a Plan call on a system running with
	// PlannerFixed (no planner to ask).
	ErrNoPlanner = errors.New("planner disabled")
	// ErrUnknownRule marks a Plan call naming a rule not in the program.
	ErrUnknownRule = errors.New("unknown rule")
	// ErrArity marks an Assert with more values than the class has
	// attributes.
	ErrArity = relation.ErrArity
	// ErrReadOnly marks a write rejected because a WAL failure flipped
	// the system into read-only degraded mode; see System.ReadOnly.
	ErrReadOnly = engine.ErrReadOnly
	// ErrClosed marks a write attempted after System.Close.
	ErrClosed = engine.ErrClosed
)

// Options configures a System.
type Options struct {
	// Matcher selects the matching algorithm; default MatcherCore.
	Matcher Matcher
	// Strategy selects the conflict-resolution strategy for serial runs;
	// default StrategyFIFO.
	Strategy Strategy
	// Seed seeds the random strategy and the engine's private RNG (the
	// deadlock-victim retry jitter), making both reproducible run-to-run.
	Seed int64
	// Storage selects the tuple storage backend serving every WM class;
	// default StorageRow (or the PRODSYS_STORAGE environment variable
	// when set to a valid backend).
	Storage Storage
	// StorageByClass overrides the storage backend for individual WM
	// classes, keyed by class name; classes not listed use Storage.
	StorageByClass map[string]Storage
	// Shards horizontally partitions every WM relation — and the
	// matchers' per-rule derived state — into that many shards by a hash
	// of each tuple's first attribute, enabling the parallel match
	// scheduler for shardable matchers (core, core-parallel, requery,
	// marker, ptree; rete matchers fall back to serial maintenance).
	// 0 means the process default (the PRODSYS_SHARDS environment
	// variable when set to a value in [1,64], else 1 = unsharded);
	// values outside [1,64] are rejected. See docs/SHARDING.md.
	Shards int
	// ShardByClass overrides the shard count for individual WM classes,
	// keyed by class name; classes not listed use Shards.
	ShardByClass map[string]int
	// ShardWorkers sizes the parallel match scheduler's worker pool.
	// 0 means min(shard space, max(2, NumCPU)); negative disables
	// parallel maintenance even on a sharded catalog.
	ShardWorkers int
	// Planner selects how LHS joins are ordered in the joiner-based
	// matchers (requery, core, core-parallel, marker, ptree): the
	// default PlannerCost compiles and caches cost-based join orders
	// from relation statistics; PlannerFixed keeps the source-order
	// evaluation. Rete matchers are unaffected either way.
	Planner Planner
	// Workers sizes the concurrent executor pool (default 4).
	Workers int
	// MaxFirings caps rule firings (default 10000).
	MaxFirings int
	// Out receives the output of write actions; default os.Stdout. Use
	// io.Discard to silence.
	Out io.Writer
	// CommitEarly injects the §5.2 protocol violation (testing only).
	CommitEarly bool
	// SetAtATime fires every eligible instantiation of the selected rule
	// per cycle (the set-oriented execution of §5.1).
	SetAtATime bool
	// TxnTimeout bounds each firing transaction: a transaction whose lock
	// waits exceed the budget is aborted (its effects rolled back, locks
	// released) and retried — the watchdog that keeps a stuck firing from
	// wedging the executor. Zero disables the watchdog.
	TxnTimeout time.Duration

	// WALPath enables crash-safe durability: every committed unit (rule
	// firing, batch, Assert/Retract) is appended to the write-ahead log
	// at this path at its commit point. If the path already holds state
	// from an earlier run, Load recovers it — checkpoint plus committed
	// log tail, replayed through match maintenance — and the program's
	// initial facts are NOT re-loaded. Empty disables durability.
	WALPath string
	// WALSync selects the log's sync policy; default WALSyncAlways.
	WALSync WALSyncMode
	// WALSyncEvery is the WALSyncInterval period; default 100ms.
	WALSyncEvery time.Duration
	// WALCheckpointEvery compacts the log (checkpoint snapshot + fresh
	// log) after that many committed units; 0 means only explicit
	// System.Checkpoint calls compact.
	WALCheckpointEvery int
	// WALFS substitutes the filesystem under the log — the
	// fault-injection hook used by the crash-recovery tests. nil means
	// the real filesystem.
	WALFS fsx.FS

	// ReplicaOf starts the system as a warm replica of the primary at
	// this base URL (e.g. "http://primary:7480"): the program's initial
	// facts are NOT loaded, writes fail with ErrReplica, and state
	// arrives solely through the replication apply surface
	// (internal/replica tails the primary's GET /v1/wal feed). Promotion
	// (System.Promote) flips the system writable. Empty means a normal
	// primary. See docs/REPLICATION.md.
	ReplicaOf string
}

// Result summarizes a run.
type Result struct {
	// Firings counts rules fired.
	Firings int
	// Cycles counts recognize-act cycles (serial) or transaction rounds
	// (concurrent).
	Cycles int
	// Halted reports whether a halt action stopped the run.
	Halted bool
	// Aborts counts transactions aborted in concurrent runs.
	Aborts int
	// Panics counts firings whose panic was contained: effects rolled
	// back, locks released, nothing committed to the WAL.
	Panics int
}

// System is a loaded production system.
type System struct {
	set     *rules.Set
	prog    *lang.Program
	db      *relation.DB
	stats   *metrics.Set
	matcher match.Matcher
	eng     *engine.Engine
	ptree   *ptree.Matcher // non-nil when Matcher == MatcherPTree
	views   *view.Manager
	quelIn  *quel.Interp
	out     io.Writer
	tracer  *trace.Tracer
	planner *joiner.Planner // nil when Options.Planner == PlannerFixed

	wal      *wal.Log      // non-nil while durability is active
	recovery *RecoveryInfo // what Load recovered; nil without a WAL

	replicaOf string // primary base URL while in replica mode ("" = primary)

	closeMu sync.Mutex // serializes Close against itself
	closed  bool       // Close has run; later calls return nil

	aud *audit.Auditor // lazily built by Audit; keeps the sampling cursor
}

// Load parses, compiles and initializes a production system from OPS5
// subset source: literalize declarations, productions, and initial facts.
func Load(src string, opts Options) (*System, error) {
	set, prog, err := rules.CompileSource(src)
	if err != nil {
		return nil, err
	}
	stats := &metrics.Set{}
	db := relation.NewDB(stats)
	if err := db.SetDefaultStorage(relation.StorageKind(opts.Storage)); err != nil {
		return nil, fmt.Errorf("prodsys: %w", err)
	}
	for class, k := range opts.StorageByClass {
		if err := db.SetClassStorage(class, relation.StorageKind(k)); err != nil {
			return nil, fmt.Errorf("prodsys: %w", err)
		}
	}
	if err := db.SetDefaultShards(opts.Shards); err != nil {
		return nil, fmt.Errorf("prodsys: %w", err)
	}
	for class, n := range opts.ShardByClass {
		if err := db.SetClassShards(class, n); err != nil {
			return nil, fmt.Errorf("prodsys: %w", err)
		}
	}
	if err := rules.BuildDB(set, db); err != nil {
		return nil, err
	}
	cs := conflict.NewSet(stats)
	tr := trace.New() // disabled until System.Trace; emit points are no-ops
	cs.SetTracer(tr)
	sys := &System{set: set, prog: prog, db: db, stats: stats, tracer: tr}
	switch opts.Planner {
	case "", PlannerCost:
		sys.planner = joiner.NewPlanner(db, stats)
	case PlannerFixed:
		// leave sys.planner nil: matchers keep LHS source order
	default:
		return nil, fmt.Errorf("prodsys: %w %q", ErrUnknownPlanner, opts.Planner)
	}
	switch opts.Matcher {
	case MatcherRete:
		sys.matcher = rete.New(set, cs, stats)
	case MatcherReteShared:
		sys.matcher = rete.NewShared(set, cs, stats)
	case MatcherRequery:
		sys.matcher = requery.New(set, db, cs, stats)
	case MatcherCore, "":
		sys.matcher = core.New(set, db, cs, stats)
	case MatcherCoreParallel:
		sys.matcher = core.New(set, db, cs, stats, core.WithParallelPropagation())
	case MatcherMarker:
		sys.matcher = marker.New(set, db, cs, stats)
	case MatcherPTree:
		pm := ptree.NewMatcher(set, db, cs, stats)
		sys.matcher = pm
		sys.ptree = pm
	default:
		return nil, fmt.Errorf("prodsys: %w %q", ErrUnknownMatcher, opts.Matcher)
	}
	match.AttachTracer(sys.matcher, tr)
	match.AttachPlanner(sys.matcher, sys.planner)
	tr.SetPlanText(func(rule string) string { return sys.planText(rule) })
	var strat conflict.Strategy
	switch opts.Strategy {
	case "", StrategyFIFO:
		strat = conflict.FIFO{}
	case StrategyLEX:
		strat = conflict.LEX{}
	case StrategyPriority:
		strat = conflict.Priority{}
	case StrategyRandom:
		strat = conflict.NewRandom(opts.Seed)
	default:
		return nil, fmt.Errorf("prodsys: %w %q", ErrUnknownStrategy, opts.Strategy)
	}
	out := opts.Out
	if out == nil {
		out = os.Stdout
	}
	sys.out = out
	sys.eng = engine.New(set, db, sys.matcher, stats, engine.Config{
		Strategy:     strat,
		MaxFirings:   opts.MaxFirings,
		Workers:      opts.Workers,
		Out:          out,
		CommitEarly:  opts.CommitEarly,
		SetAtATime:   opts.SetAtATime,
		Tracer:       tr,
		TxnTimeout:   opts.TxnTimeout,
		Seed:         opts.Seed,
		ShardWorkers: opts.ShardWorkers,
	})
	if err := sys.openWAL(opts); err != nil {
		return nil, err
	}
	if opts.ReplicaOf != "" {
		// Replica: working memory is the primary's, delivered over the
		// feed — never the program's initial facts (a recovered local
		// log is kept; the feed resumes from or re-bootstraps past it).
		sys.replicaOf = opts.ReplicaOf
		sys.eng.SetReplica(true)
		return sys, nil
	}
	if sys.recovery == nil || !sys.recovery.Recovered {
		// Fresh start: load the program's initial facts. With a WAL
		// attached each fact is logged, so the next open recovers them
		// instead of re-reading the program.
		if err := sys.eng.LoadFacts(prog); err != nil {
			sys.Close()
			return nil, err
		}
	}
	return sys, nil
}

// LoadFile is Load reading the source from a file.
func LoadFile(path string, opts Options) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(string(data), opts)
}

// Run executes the serial OPS5 recognize-act cycle until quiescence or
// halt. It is a thin wrapper over RunContext with a background
// context — the context-taking variant is the primary entry point, and
// new execution features land there.
func (s *System) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunConcurrent executes the conflict set with concurrent transactional
// firing under two-phase locking (§5). It is a thin wrapper over
// RunConcurrentContext with a background context — the context-taking
// variant is the primary entry point, and new execution features land
// there.
func (s *System) RunConcurrent() (Result, error) {
	return s.RunConcurrentContext(context.Background())
}

// toValue converts a Go value to a working-memory value. Supported:
// int/int64/float64/string; a string is stored as a symbol.
func toValue(v any) (value.V, error) {
	switch x := v.(type) {
	case int:
		return value.OfInt(int64(x)), nil
	case int64:
		return value.OfInt(x), nil
	case float64:
		return value.OfFloat(x), nil
	case string:
		return value.OfSym(x), nil
	case value.V:
		return x, nil
	case nil:
		return value.V{}, nil
	default:
		return value.V{}, fmt.Errorf("prodsys: unsupported value type %T", v)
	}
}

// tupleFor validates class and arity and builds the WM tuple for an
// assertion. Values shorter than the class arity leave trailing
// attributes unset.
func (s *System) tupleFor(class string, values []any) (relation.Tuple, error) {
	schema, ok := s.set.Classes[class]
	if !ok {
		return nil, fmt.Errorf("prodsys: %w %s", ErrUnknownClass, class)
	}
	if len(values) > schema.Arity() {
		return nil, fmt.Errorf("prodsys: class %s: %w: has %d attributes, got %d values", class, ErrArity, schema.Arity(), len(values))
	}
	t := make(relation.Tuple, schema.Arity())
	for i, v := range values {
		vv, err := toValue(v)
		if err != nil {
			return nil, err
		}
		t[i] = vv
	}
	return t, nil
}

// Batch collects working-memory assertions and retractions for one
// set-oriented, transactional submission. Build with System.Batch, chain
// Assert/Retract calls, then Commit.
type Batch struct {
	sys       *System
	ops       []engine.DeltaOp
	err       error // first build error, reported at Commit
	committed bool
}

// Batch starts an empty change batch against this system.
func (s *System) Batch() *Batch { return &Batch{sys: s} }

// Assert queues an assertion of a working-memory element. The tuple ID
// is assigned at Commit.
func (b *Batch) Assert(class string, values ...any) *Batch {
	if b.err != nil {
		return b
	}
	if b.committed {
		b.err = errors.New("prodsys: batch already committed")
		return b
	}
	t, err := b.sys.tupleFor(class, values)
	if err != nil {
		b.err = err
		return b
	}
	b.ops = append(b.ops, engine.DeltaOp{Class: class, Tuple: t})
	return b
}

// Retract queues a retraction of the identified working-memory element.
func (b *Batch) Retract(class string, id uint64) *Batch {
	if b.err != nil {
		return b
	}
	if b.committed {
		b.err = errors.New("prodsys: batch already committed")
		return b
	}
	b.ops = append(b.ops, engine.DeltaOp{Retract: true, Class: class, ID: relation.TupleID(id)})
	return b
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Commit applies the batch atomically with respect to other batches:
// relation-level write locks are taken once per touched class, the WM
// changes apply in order, and match maintenance runs set-at-a-time —
// once per (class, direction) group — before the locks release. The
// returned slice is aligned with the queued operations: the assigned
// tuple ID at assertion positions, zero at retractions. A batch commits
// at most once; further Commit calls (and further Assert/Retract) fail.
func (b *Batch) Commit() ([]uint64, error) {
	return b.CommitContext(context.Background())
}

// CommitContext is Commit honoring ctx: cancellation is observed before
// the batch acquires its relation locks; once the locks are held the
// batch applies in full.
func (b *Batch) CommitContext(ctx context.Context) ([]uint64, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.committed {
		return nil, errors.New("prodsys: batch already committed")
	}
	b.committed = true
	ids, err := b.sys.eng.ApplyDeltaContext(ctx, b.ops)
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out, err
}

// Assert inserts a working-memory element, running the match maintenance
// process, and returns its tuple ID. It is a single-operation Batch;
// values shorter than the class arity leave trailing attributes unset.
func (s *System) Assert(class string, values ...any) (uint64, error) {
	ids, err := s.Batch().Assert(class, values...).Commit()
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// Retract deletes the identified working-memory element. It is a
// single-operation Batch.
func (s *System) Retract(class string, id uint64) error {
	_, err := s.Batch().Retract(class, id).Commit()
	return err
}

// ConflictKeys returns the current conflict set's instantiation keys
// ("Rule|id|id|…"), sorted.
func (s *System) ConflictKeys() []string {
	return s.eng.ConflictSet().Keys()
}

// WM renders the whole working memory canonically, one tuple per line.
func (s *System) WM() string { return s.eng.SnapshotWM() }

// WMClass renders one class's live tuples, "id: (v, ...)" per line,
// ascending by ID.
func (s *System) WMClass(class string) []string {
	rel, ok := s.db.Get(class)
	if !ok {
		return nil
	}
	var out []string
	rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
		out = append(out, fmt.Sprintf("%d: %s", id, t))
		return true
	})
	return out
}

// Classes lists the declared working-memory classes.
func (s *System) Classes() []string { return s.set.ClassNames() }

// RuleNames lists the loaded rules in definition order.
func (s *System) RuleNames() []string {
	out := make([]string, len(s.set.Rules))
	for i, r := range s.set.Rules {
		out[i] = r.Name
	}
	return out
}

// MatcherName reports the active matching algorithm.
func (s *System) MatcherName() string { return s.matcher.Name() }

// RulebaseQuery answers "which rules have a condition on class whose
// restriction of attr intersects [lo, hi]" (§4.2.3; nil bound =
// unbounded). Only available with MatcherPTree.
func (s *System) RulebaseQuery(class, attr string, lo, hi any) ([]string, error) {
	if s.ptree == nil {
		return nil, fmt.Errorf("prodsys: rulebase queries require MatcherPTree")
	}
	loV, err := toValue(lo)
	if err != nil {
		return nil, err
	}
	hiV, err := toValue(hi)
	if err != nil {
		return nil, err
	}
	rs := s.ptree.Index().RulesInRange(class, attr, loV, hiV)
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out, nil
}

// QuelResult reports what one QUEL statement did.
type QuelResult struct {
	// Columns and Rows hold a retrieve statement's output.
	Columns []string
	Rows    [][]string
	// Affected counts tuples changed by append/delete/replace.
	Affected int
	// Fired counts the trigger firings the statement caused.
	Fired int
}

// quelInterp lazily builds the QUEL interpreter over this system.
func (s *System) quelInterp() *quel.Interp {
	if s.quelIn == nil {
		classes := map[string][]string{}
		for name, schema := range s.set.Classes {
			classes[name] = schema.Attrs()
		}
		s.quelIn = quel.NewInterp(s.eng, quel.NewTranslator(classes))
	}
	return s.quelIn
}

// Quel executes one QUEL statement (§2.3) against the working memory:
// range declarations, retrieve, append, delete, replace. Data changes run
// the loaded triggers to quiescence before returning. ALWAYS commands
// must be part of the program loaded with LoadQuel — they compile into
// rules.
func (s *System) Quel(stmt string) (*QuelResult, error) {
	r, err := s.quelInterp().Exec(stmt)
	if err != nil {
		return nil, err
	}
	return &QuelResult{Columns: r.Columns, Rows: r.Rows, Affected: r.Affected, Fired: r.Fired}, nil
}

// LoadQuel loads a QUEL script: create statements declare the relations,
// range declarations persist for the session, ALWAYS-tagged commands are
// translated into productions (the paper's triggers, §2.3), and the
// remaining DML statements execute in order — each running the triggers
// to quiescence. Additional OPS5 rule source may be supplied in opsRules
// (pass "" for none).
func LoadQuel(script, opsRules string, opts Options) (*System, error) {
	stmts := quel.SplitStatements(script)
	classes := map[string][]string{}
	var classOrder []string
	var dml []*quel.Stmt
	parsed := make([]*quel.Stmt, 0, len(stmts))
	for _, src := range stmts {
		st, err := quel.Parse(src)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, st)
		if st.Kind == quel.StmtCreate {
			if _, dup := classes[st.Class]; dup {
				return nil, fmt.Errorf("prodsys: relation %s created twice", st.Class)
			}
			classes[st.Class] = st.Attrs
			classOrder = append(classOrder, st.Class)
		}
	}
	tr := quel.NewTranslator(classes)
	var rulesSrc strings.Builder
	for _, cls := range classOrder {
		rulesSrc.WriteString("(literalize " + cls + " " + strings.Join(classes[cls], " ") + ")" + "\n")
	}
	if opsRules != "" {
		rulesSrc.WriteString(opsRules)
		rulesSrc.WriteString("\n")
	}
	for _, st := range parsed {
		switch {
		case st.Kind == quel.StmtCreate:
			// handled above
		case st.Kind == quel.StmtRange:
			if err := tr.DeclareRange(st.Var, st.Class); err != nil {
				return nil, err
			}
		case st.Always:
			prods, err := tr.TranslateAlways(st)
			if err != nil {
				return nil, err
			}
			for _, p := range prods {
				rulesSrc.WriteString(p)
			}
		default:
			dml = append(dml, st)
		}
	}
	sys, err := Load(rulesSrc.String(), opts)
	if err != nil {
		return nil, err
	}
	sys.quelIn = quel.NewInterp(sys.eng, tr)
	for _, st := range dml {
		res, err := sys.quelIn.ExecStmt(st)
		if err != nil {
			return nil, err
		}
		if st.Kind == quel.StmtRetrieve && sys.outWriter() != nil {
			printQuelRows(sys.outWriter(), res)
		}
	}
	return sys, nil
}

// outWriter exposes the configured write-action sink.
func (s *System) outWriter() io.Writer { return s.out }

// printQuelRows renders retrieve output.
func printQuelRows(w io.Writer, r *quel.Result) {
	fmt.Fprintln(w, strings.Join(r.Columns, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
}

// RegisterFunc makes a Go function callable from rule RHS actions via
// (call name arg ...). Arguments arrive rendered as strings (symbols and
// strings unquoted, numbers in their literal form).
func (s *System) RegisterFunc(name string, fn func(args []string) error) {
	s.eng.RegisterFunc(name, func(vals []value.V) error {
		args := make([]string, len(vals))
		for i, v := range vals {
			if v.Kind() == value.Str || v.Kind() == value.Sym {
				args[i] = v.AsString()
			} else {
				args[i] = v.String()
			}
		}
		return fn(args)
	})
}

// SaveWM writes the current working memory in the line-oriented dump
// format (tuple IDs included); the persistence of §3.2.
func (s *System) SaveWM(w io.Writer) error { return s.db.Dump(w) }

// SaveWMFile is SaveWM writing to a file. The dump lands atomically —
// written to a temp sibling, fsynced, then renamed into place — so a
// crash mid-save never leaves a truncated dump where a complete one
// (or nothing) used to be.
func (s *System) SaveWMFile(path string) error {
	return fsx.WriteAtomic(fsx.OS{}, path, s.db.Dump)
}

// RestoreWM loads a working-memory dump into this system, preserving
// tuple IDs, and replays the match maintenance so the conflict set
// reflects the restored contents. The whole dump is validated before
// anything is applied: on error the working memory is untouched. The
// system's WM should be empty and the dump must have been produced by a
// system with the same class declarations. With a WAL attached, the
// restored tuples are logged as one batch so they survive a restart.
func (s *System) RestoreWM(r io.Reader) error {
	restored, err := s.db.Restore(r)
	if err != nil {
		return err
	}
	for _, rt := range restored {
		if err := s.matcher.Insert(rt.Class, rt.ID, rt.Tuple); err != nil {
			return err
		}
	}
	return s.eng.LogRestored(restored)
}

// RestoreWMFile is RestoreWM reading from a file.
func (s *System) RestoreWMFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.RestoreWM(f)
}

// AttachViews defines materialized views (productions with empty RHS)
// over this system's working memory. The views are maintained
// incrementally through every Assert, Retract and rule firing.
func (s *System) AttachViews(src string) (*Views, error) {
	mgr, err := view.NewManager(src, s.db, s.stats)
	if err != nil {
		return nil, err
	}
	s.views = mgr
	s.eng.SetWMObserver(func(inserted bool, class string, id relation.TupleID, t relation.Tuple) {
		if inserted {
			mgr.Insert(class, id, t)
		} else {
			mgr.Delete(class, id, t)
		}
	})
	// Seed the views with the current WM contents.
	for _, name := range s.db.Names() {
		rel, err := s.db.Lookup(name)
		if err != nil {
			return nil, err
		}
		var ids []relation.TupleID
		var tups []relation.Tuple
		rel.Scan(func(id relation.TupleID, t relation.Tuple) bool {
			ids = append(ids, id)
			tups = append(tups, t.Clone())
			return true
		})
		for i := range ids {
			if err := mgr.Insert(name, ids[i], tups[i]); err != nil {
				return nil, err
			}
		}
	}
	return &Views{mgr: mgr}, nil
}

// Views is a set of maintained materialized views.
type Views struct {
	mgr *view.Manager
}

// Names lists the view names.
func (v *Views) Names() []string { return v.mgr.Names() }

// Rows returns the named view's rows ("col=val ... ×count"), sorted.
func (v *Views) Rows(name string) ([]string, error) {
	vw, ok := v.mgr.View(name)
	if !ok {
		return nil, fmt.Errorf("prodsys: unknown view %q", name)
	}
	return vw.Rows(), nil
}

// Len returns the named view's row count.
func (v *Views) Len(name string) (int, error) {
	vw, ok := v.mgr.View(name)
	if !ok {
		return 0, fmt.Errorf("prodsys: unknown view %q", name)
	}
	return vw.Len(), nil
}

// FormatStats renders selected counters for display.
func FormatStats(stats map[string]int64, prefixes ...string) string {
	var keys []string
	for k := range stats {
		if len(prefixes) == 0 {
			keys = append(keys, k)
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(k, p) {
				keys = append(keys, k)
				break
			}
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-24s %d\n", k, stats[k])
	}
	return b.String()
}
