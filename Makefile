GO ?= go

.PHONY: build test test-storage test-shards bench bench-storage bench-planner bench-shard check fmt fuzz-short trace-demo crash-demo audit-demo soak-demo failover-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-storage runs the tier-1 suite once per storage backend; the
# PRODSYS_STORAGE env var sets the process-wide default backend.
test-storage:
	PRODSYS_STORAGE=row $(GO) test ./...
	PRODSYS_STORAGE=columnar $(GO) test ./...

# test-shards runs the tier-1 suite once unsharded and once with every
# relation hash-partitioned four ways; PRODSYS_SHARDS sets the
# process-wide default shard count (docs/SHARDING.md).
test-shards:
	PRODSYS_SHARDS=1 $(GO) test ./...
	PRODSYS_SHARDS=4 $(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-storage runs the storage benchmark — the payroll insert batch
# crossed over backend (row|columnar) × index availability × matcher —
# printing the table and writing the results to BENCH_6.json.
bench-storage:
	$(GO) run ./cmd/psbench -storage-bench BENCH_6.json

# bench-planner runs the join-planner benchmark — fixed vs cost-based
# order on the chain and payroll workloads through core and requery,
# with plan-cache hit rates — printing the table and writing the
# results to BENCH_7.json.
bench-planner:
	$(GO) run ./cmd/psbench -planner-bench BENCH_7.json

# bench-shard runs the shard-scaling benchmark — the payroll insert
# batch on a 4-way sharded catalog at 1/2/4/8 scheduler workers vs the
# unsharded serial baseline — printing the table and writing the
# results (with the runner's CPU count) to BENCH_9.json. The speedup
# column is bounded by the runner's cores; EXPERIMENTS.md E17 records
# the interpretation.
bench-shard:
	$(GO) run ./cmd/psbench -shard-bench BENCH_9.json

# check is the extended verification: static analysis, formatting, and
# the full test suite under the race detector. staticcheck runs when
# installed (CI pins and installs it; local runs skip it gracefully).
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; fi
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race ./...

fmt:
	gofmt -w .

# fuzz-short smoke-runs every fuzz target briefly; CI uses it to keep
# the decoders honest without burning minutes.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeValue -fuzztime=$(FUZZTIME) ./internal/relation
	$(GO) test -run=^$$ -fuzz=FuzzRestore -fuzztime=$(FUZZTIME) ./internal/relation
	$(GO) test -run=^$$ -fuzz=FuzzScanLog -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run=^$$ -fuzz=FuzzReplicaFrame -fuzztime=$(FUZZTIME) ./internal/replica

# trace-demo records a traced payroll run: the per-rule profile prints
# to stdout and the event stream lands in trace.json in Chrome
# trace_event format (open at chrome://tracing or ui.perfetto.dev).
trace-demo:
	$(GO) run ./cmd/psbench -trace trace.json

# audit-demo injects seeded corruption into the Rete network's beta
# memories, then lets the online integrity auditor detect it, rebuild
# the derived state from working memory, and verify with a clean
# re-audit. Exit status 0 means detected-and-repaired.
audit-demo:
	$(GO) run ./cmd/psdb -matcher rete -run=false -wm=false \
		-corrupt 42 -audit -audit-repair testdata/payroll.ops

# soak-demo runs the server-mode load harness twice (docs/SERVER.md):
# an overload pass against a deliberately tiny admission window (429
# shedding must be visible) and a chaos pass that SIGKILLs the server
# mid-load, restarts it, and verifies recovery against the
# acknowledgement oracle plus a full integrity audit. Both runs append
# to BENCH_8.json; psload exits non-zero if any acknowledged commit
# went missing.
SOAK_DURATION ?= 6s
soak-demo:
	$(GO) build -o /tmp/psserve ./cmd/psserve
	$(GO) build -o /tmp/psload ./cmd/psload
	rm -f /tmp/soak.wal /tmp/soak.wal.ckpt /tmp/soak-chaos.wal /tmp/soak-chaos.wal.ckpt BENCH_8.json
	/tmp/psload -spawn -psserve /tmp/psserve -program testdata/server.ops \
		-wal /tmp/soak.wal -addr 127.0.0.1:8372 -clients 32 \
		-duration $(SOAK_DURATION) -max-inflight 2 -max-queue 2 \
		-label overload -out BENCH_8.json
	/tmp/psload -spawn -psserve /tmp/psserve -program testdata/server.ops \
		-wal /tmp/soak-chaos.wal -addr 127.0.0.1:8373 -clients 8 \
		-duration $(SOAK_DURATION) -chaos -label chaos-soak -out BENCH_8.json

# failover-demo runs the replication drill (docs/REPLICATION.md): a
# primary/replica pair under load, then repeated kill→promote→rejoin
# cycles with role swaps. Each cycle verifies the acknowledgement
# oracle on the promoted node, runs the audit promotion gate, fences
# every stale-epoch append from the resurrected old primary, and
# compares working memory and conflict sets byte-identical after
# rejoin. Results land in BENCH_10.json; psload exits non-zero on any
# lost acked commit, fence leak, or rejoin divergence.
FAILOVER_DURATION ?= 10s
FAILOVER_CYCLES ?= 5
failover-demo:
	$(GO) build -o /tmp/psserve ./cmd/psserve
	$(GO) build -o /tmp/psload ./cmd/psload
	rm -f /tmp/failover.wal.a /tmp/failover.wal.a.ckpt \
		/tmp/failover.wal.b /tmp/failover.wal.b.ckpt BENCH_10.json
	/tmp/psload -spawn -psserve /tmp/psserve -program testdata/server.ops \
		-wal /tmp/failover.wal -addr 127.0.0.1:8372 -replica-addr 127.0.0.1:8373 \
		-clients 8 -duration $(FAILOVER_DURATION) -chaos-failover \
		-cycles $(FAILOVER_CYCLES) -label failover -out BENCH_10.json

# crash-demo kills a WAL-attached run with SIGKILL mid-flight, then
# reopens the log read-only to show recovery landing on the last
# committed firing.
crash-demo:
	$(GO) build -o /tmp/psdb ./cmd/psdb
	rm -f /tmp/crashdemo.wal /tmp/crashdemo.wal.ckpt
	/tmp/psdb -wal /tmp/crashdemo.wal -checkpoint-every 64 -wm=false \
		testdata/crashloop.ops & pid=$$!; \
		sleep 1; kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
		echo "; killed psdb (pid $$pid) mid-run"
	/tmp/psdb -wal /tmp/crashdemo.wal -run=false testdata/crashloop.ops
