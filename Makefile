GO ?= go

.PHONY: build test bench check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# check is the extended verification: static analysis, formatting, and
# the full test suite under the race detector.
check:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race ./...

fmt:
	gofmt -w .
