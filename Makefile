GO ?= go

.PHONY: build test bench check fmt trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# check is the extended verification: static analysis, formatting, and
# the full test suite under the race detector.
check:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race ./...

fmt:
	gofmt -w .

# trace-demo records a traced payroll run: the per-rule profile prints
# to stdout and the event stream lands in trace.json in Chrome
# trace_event format (open at chrome://tracing or ui.perfetto.dev).
trace-demo:
	$(GO) run ./cmd/psbench -trace trace.json
