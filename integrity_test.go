package prodsys

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"prodsys/internal/relation"
	"prodsys/internal/workload"
)

// applyWorkload drives a stream of workload operations through the
// engine, resolving each delete against a live tuple of its class the
// way the experiment harness does.
func applyWorkload(t *testing.T, sys *System, ops []workload.Op) {
	t.Helper()
	live := map[string][]relation.TupleID{}
	for _, op := range ops {
		if op.Delete {
			ids := live[op.Class]
			if len(ids) == 0 {
				continue
			}
			id := ids[len(ids)-1]
			live[op.Class] = ids[:len(ids)-1]
			if err := sys.eng.Retract(op.Class, id); err != nil {
				t.Fatalf("retract %s %d: %v", op.Class, id, err)
			}
			continue
		}
		id, err := sys.eng.Assert(op.Class, op.Tuple)
		if err != nil {
			t.Fatalf("assert %s: %v", op.Class, err)
		}
		live[op.Class] = append(live[op.Class], id)
	}
}

// auditSystem builds a system on the payroll workload with derived state
// worth auditing: a populated WM and an unfired conflict set.
func auditSystem(t *testing.T, m Matcher, rules int, seed int64) *System {
	t.Helper()
	sys, err := Load(workload.PayrollRules(rules, false), Options{Matcher: m, Out: discard{}})
	if err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, sys, workload.PayrollOps(seed, 250, 0.25))
	return sys
}

// TestAuditCleanAfterWorkload uses the auditor as an oracle: after a
// randomized insert/delete workload (and a consuming run exercising
// refraction), every matcher's derived state must agree with the ground
// truth recomputed from working memory.
func TestAuditCleanAfterWorkload(t *testing.T) {
	for _, m := range Matchers() {
		t.Run(string(m), func(t *testing.T) {
			sys, err := Load(workload.PayrollRules(8, true), Options{Matcher: m, Out: discard{}})
			if err != nil {
				t.Fatal(err)
			}
			applyWorkload(t, sys, workload.PayrollOps(11, 250, 0.25))
			if _, err := sys.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			applyWorkload(t, sys, workload.PayrollOps(13, 100, 0.4))
			rep, err := sys.Audit(AuditOptions{})
			if err != nil {
				t.Fatalf("audit: %v", err)
			}
			if !rep.Clean() {
				var lines []string
				for _, d := range rep.Divergences {
					lines = append(lines, d.String())
				}
				t.Fatalf("audit found %d divergences:\n%s", len(rep.Divergences), strings.Join(lines, "\n"))
			}
			if rep.Sampled || rep.RulesChecked != 8 {
				t.Fatalf("full audit: sampled=%v rules=%d, want full over 8", rep.Sampled, rep.RulesChecked)
			}
			if sys.Metrics().Integrity.AuditRuns != 1 {
				t.Fatalf("audit_runs = %d, want 1", sys.Metrics().Integrity.AuditRuns)
			}
		})
	}
}

// TestAuditDetectsAndRepairsCorruption seeds corruption into each
// matcher's derived state and requires 100% detection, successful
// repair, and a clean immediate re-audit.
func TestAuditDetectsAndRepairsCorruption(t *testing.T) {
	for _, m := range Matchers() {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", m, seed), func(t *testing.T) {
				sys := auditSystem(t, m, 6, seed)
				desc := sys.InjectCorruption(seed)
				if desc == "" {
					t.Fatal("InjectCorruption found nothing to corrupt")
				}
				rep, err := sys.Audit(AuditOptions{Repair: true})
				if err != nil {
					t.Fatalf("audit: %v", err)
				}
				if rep.Clean() {
					t.Fatalf("audit missed seeded corruption: %s", desc)
				}
				if rep.Repaired == 0 {
					t.Fatalf("audit repaired nothing for: %s", desc)
				}
				again, err := sys.Audit(AuditOptions{})
				if err != nil {
					t.Fatalf("re-audit: %v", err)
				}
				if !again.Clean() {
					var lines []string
					for _, d := range again.Divergences {
						lines = append(lines, d.String())
					}
					t.Fatalf("re-audit after repair still divergent (%s):\n%s", desc, strings.Join(lines, "\n"))
				}
				st := sys.Metrics().Integrity
				if st.AuditDivergences == 0 || st.AuditRepairs == 0 {
					t.Fatalf("integrity counters: %+v", st)
				}
			})
		}
	}
}

// TestAuditSampledMode checks the budgeted online mode: each run audits
// at most MaxRules rules and successive runs rotate through the set.
func TestAuditSampledMode(t *testing.T) {
	sys := auditSystem(t, MatcherRete, 6, 7)
	for run := 0; run < 3; run++ {
		rep, err := sys.Audit(AuditOptions{MaxRules: 2})
		if err != nil {
			t.Fatalf("sampled audit %d: %v", run, err)
		}
		if !rep.Sampled || rep.RulesChecked != 2 {
			t.Fatalf("sampled audit %d: sampled=%v rules=%d, want 2-rule window", run, rep.Sampled, rep.RulesChecked)
		}
		if !rep.Clean() {
			t.Fatalf("sampled audit %d divergent: %v", run, rep.Divergences)
		}
	}
	// A full audit is not sampled.
	rep, err := sys.Audit(AuditOptions{})
	if err != nil || rep.Sampled || rep.RulesChecked != 6 {
		t.Fatalf("full audit after sampling: %+v, %v", rep, err)
	}
}

// TestSampledAuditStillDetects: the rotating window eventually reaches a
// corrupted rule even when each run checks a single rule.
func TestSampledAuditStillDetects(t *testing.T) {
	sys := auditSystem(t, MatcherCore, 4, 3)
	if desc := sys.InjectCorruption(3); desc == "" {
		t.Fatal("nothing to corrupt")
	}
	found := false
	for run := 0; run < 4; run++ {
		rep, err := sys.Audit(AuditOptions{MaxRules: 1, Repair: true})
		if err != nil {
			t.Fatalf("sampled audit %d: %v", run, err)
		}
		if !rep.Clean() {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("four 1-rule sampled audits over 4 rules never saw the corruption")
	}
}

const panicWALSrc = `
(literalize A v)
(literalize B v)

(p boom
    (A ^v <x>)
  -->
    (make B ^v <x>)
    (call explode))

(A 1)
`

// TestPanickedFiringNeverCommitsToWAL: a firing whose RHS panics is
// contained and rolled back, and the write-ahead log records no commit —
// recovery reproduces only the pre-panic state.
func TestPanickedFiringNeverCommitsToWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wm.wal")
	sys, err := Load(panicWALSrc, Options{Matcher: MatcherRete, WALPath: path, Out: discard{}})
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterFunc("explode", func([]string) error { panic("injected RHS panic") })
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Panics != 1 || res.Firings != 0 {
		t.Fatalf("result = %+v, want 1 contained panic and 0 firings", res)
	}
	if sys.Metrics().Integrity.PanicsContained != 1 {
		t.Fatalf("panics_contained = %d, want 1", sys.Metrics().Integrity.PanicsContained)
	}
	// The rolled-back make is gone; the engine keeps serving.
	if n := len(sys.WMClass("B")); n != 0 {
		t.Fatalf("%d B tuples after contained panic, want 0", n)
	}
	if _, err := sys.Assert("A", 2); err != nil {
		t.Fatalf("post-panic assert: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := Load(panicWALSrc, Options{Matcher: MatcherRete, WALPath: path, Out: discard{}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if n := len(sys2.WMClass("B")); n != 0 {
		t.Fatalf("recovery produced %d B tuples from an uncommitted firing, want 0", n)
	}
	if n := len(sys2.WMClass("A")); n != 2 {
		t.Fatalf("recovered %d A tuples, want 2", n)
	}
}
