package prodsys

// Server-mode robustness at the library level: idempotent/concurrent
// Close, WAL group commit coalescing, and context cancellation leaving
// a clean, auditable system. The HTTP layer's own tests live in
// internal/server.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"prodsys/internal/faultfs"
)

// TestCloseIdempotentConcurrent: double Close, concurrent Close, and
// Close racing in-flight batches must not panic; each racing commit
// either lands before the log closes or fails with ErrClosed.
func TestCloseIdempotentConcurrent(t *testing.T) {
	fs := faultfs.New()
	sys, err := Load(durableSrc, Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal", WALSync: WALSyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := sys.Batch().Assert("Task", c*1000+i).Commit()
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("racing commit: %v", err)
					return
				}
			}
		}(c)
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sys.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := sys.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
	// Reads keep working after Close.
	if got := len(sys.WMClass("Task")); got < 0 {
		t.Fatalf("WMClass after close: %d", got)
	}
	if _, err := sys.Assert("Task", 99); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

// TestGroupCommitCoalesces: N goroutines committing under WALSyncGroup
// must be acknowledged by fewer fsyncs than appends — riders share the
// leader's sync — while every acknowledged commit survives reopen.
func TestGroupCommitCoalesces(t *testing.T) {
	fs := faultfs.New()
	opts := Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal", WALSync: WALSyncGroup}
	sys, err := Load(durableSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	const clients, each = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := sys.Batch().Assert("Task", c*1000+i).Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	sn := sys.Metrics()
	if sn.Server.GroupCommits == 0 {
		t.Fatal("no group commits recorded")
	}
	// On the instant in-memory FS every committer tends to become its
	// own leader, so coalescing is opportunistic here; the hard bound
	// is that group mode never syncs more than it appends. The
	// deterministic many-appends-one-sync case is covered in
	// internal/wal's group commit test.
	if sn.Durability.WALSyncs > sn.Durability.WALAppends {
		t.Fatalf("more syncs than appends: %d > %d (group_commits=%d waiters=%d)",
			sn.Durability.WALSyncs, sn.Durability.WALAppends,
			sn.Server.GroupCommits, sn.Server.GroupWaiters)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Load(durableSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// durableSrc seeds 2 Tasks of its own on the first load.
	if got := len(re.WMClass("Task")); got != clients*each+2 {
		t.Fatalf("recovered %d Tasks, want %d", got, clients*each+2)
	}
}

// TestBatchContextCancellation: a canceled context aborts the batch
// before any mutation — working memory unchanged, matcher state clean
// under audit, and the same batch succeeds afterwards.
func TestBatchContextCancellation(t *testing.T) {
	fs := faultfs.New()
	sys, err := Load(durableSrc, Options{Out: discard{}, WALFS: fs, WALPath: "wm.wal", WALSync: WALSyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	before := len(sys.WMClass("Task"))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Batch().Assert("Task", 77).CommitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled commit: %v", err)
	}
	if got := len(sys.WMClass("Task")); got != before {
		t.Fatalf("canceled batch mutated WM: %d -> %d", before, got)
	}
	rep, err := sys.Audit(AuditOptions{})
	if err != nil || !rep.Clean() {
		t.Fatalf("audit after cancellation: clean=%v err=%v", rep != nil && rep.Clean(), err)
	}
	if _, err := sys.Batch().Assert("Task", 77).Commit(); err != nil {
		t.Fatalf("commit after cancellation: %v", err)
	}
}

// TestRunCancelMidFlight: cancelling a run mid-flight stops the
// executor with the cancellation error while leaving a transactionally
// consistent, auditable system behind. (TestRunContextCancellation in
// trace_test.go covers the pre-cancelled case.)
func TestRunCancelMidFlight(t *testing.T) {
	// A two-rule ping-pong that never quiesces on its own.
	src := `
(literalize Ping n)
(literalize Pong n)
(p ping (Ping ^n <n>) --> (remove 1) (make Pong ^n <n>))
(p pong (Pong ^n <n>) --> (remove 1) (make Ping ^n <n>))
(Ping 1)
`
	sys, err := Load(src, Options{Out: discard{}, MaxFirings: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sys.RunContext(ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: %v", err)
	}
	rep, err := sys.Audit(AuditOptions{})
	if err != nil || !rep.Clean() {
		t.Fatalf("audit after canceled run: clean=%v err=%v", rep != nil && rep.Clean(), err)
	}
	// Exactly one token is alive, whichever side it was on.
	if n := len(sys.WMClass("Ping")) + len(sys.WMClass("Pong")); n != 1 {
		t.Fatalf("token count after cancel: %d", n)
	}
}

// TestSeededRetryIsolation: two systems share no RNG state — the
// package-global rand is untouched by engine backoff (each engine owns
// a seeded source), so identical seeds give identical behavior.
func TestSeededRetryIsolation(t *testing.T) {
	a, err := Load(durableSrc, Options{Out: discard{}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Load(durableSrc, Options{Out: discard{}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Firings != rb.Firings || fmt.Sprint(a.WMClass("Done")) != fmt.Sprint(b.WMClass("Done")) {
		t.Fatalf("same seed diverged: %+v vs %+v", ra, rb)
	}
}
