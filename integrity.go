package prodsys

import (
	"math/rand"

	"prodsys/internal/audit"
)

// This file is the public surface of the integrity subsystem: online
// audits that recompute every matcher's ground truth from the base WM
// relations and diff it against the derived state, self-healing repair,
// and the fault-injection hook the detection tests (and the psdb demo)
// drive.

// AuditDivergence is one disagreement between the matcher's derived
// state and the ground truth recomputed from working memory.
type AuditDivergence struct {
	// Class is the divergence kind (e.g. "conflict-missing",
	// "mark-counter", "token-missing", "marker-missing").
	Class string
	// Rule names the affected rule; empty when not attributable to one
	// rule (shared structures), which forces a full rebuild on repair.
	Rule string
	// CE is the condition element index, -1 when rule- or set-level.
	CE int
	// Key identifies the diverging entry.
	Key string
	// Expected and Actual describe both sides of the disagreement.
	Expected string
	Actual   string
}

// String renders the divergence for logs and error output.
func (d AuditDivergence) String() string { return audit.Divergence(d).String() }

// AuditReport is the outcome of one System.Audit run.
type AuditReport struct {
	// Matcher names the audited matching algorithm.
	Matcher string
	// RulesChecked counts the rules whose derived state was verified.
	RulesChecked int
	// Sampled reports whether this run checked a budgeted window of
	// rules rather than all of them.
	Sampled bool
	// Divergences lists every disagreement found, deterministically
	// ordered.
	Divergences []AuditDivergence
	// Repaired counts divergences addressed by the repair pass.
	Repaired int
	// Rebuilt reports whether the repair rebuilt matcher derived state.
	Rebuilt bool
}

// Clean reports whether the audit found no divergence.
func (r *AuditReport) Clean() bool { return len(r.Divergences) == 0 }

// AuditOptions tunes one System.Audit run.
type AuditOptions struct {
	// MaxRules, when positive and smaller than the rule count, switches
	// to sampled mode: each run checks at most this many rules, rotating
	// through the rule set across successive calls (the per-rule budget
	// of continuous online auditing).
	MaxRules int
	// Repair rebuilds the affected derived state from working memory
	// when divergences are found, so an immediate re-audit is clean.
	Repair bool
}

// Audit verifies the matcher's derived state against ground truth
// recomputed from the base WM relations: conflict-set instantiations
// (via the full LHS joins), COND-relation Mark counters, Rete alpha and
// beta memories, rule markers, and the condition index, depending on
// the active matcher. The audit runs under the engine's maintenance
// lock, so it is safe to call online between firings; it sees a
// quiescent, transaction-consistent state. With opts.Repair, divergent
// rules' derived state is rebuilt from WM (falling back to a full
// matcher rebuild when a divergence is not attributable to one rule).
func (s *System) Audit(opts AuditOptions) (*AuditReport, error) {
	if s.aud == nil {
		s.aud = audit.New(s.set, s.db, s.matcher, s.stats)
		s.aud.SetTracer(s.tracer)
	}
	var rep *audit.Report
	var err error
	s.eng.WithMaintenanceLock(func() {
		rep, err = s.aud.Run(audit.Options{MaxRules: opts.MaxRules, Repair: opts.Repair})
	})
	return convertAuditReport(rep), err
}

// convertAuditReport maps the internal audit report onto the public
// type; nil in, nil out.
func convertAuditReport(rep *audit.Report) *AuditReport {
	if rep == nil {
		return nil
	}
	out := &AuditReport{
		Matcher:      rep.Matcher,
		RulesChecked: rep.RulesChecked,
		Sampled:      rep.Sampled,
		Repaired:     rep.Repaired,
		Rebuilt:      rep.Rebuilt,
	}
	for _, d := range rep.Divergences {
		out.Divergences = append(out.Divergences, AuditDivergence(d))
	}
	return out
}

// InjectCorruption deliberately corrupts the active matcher's derived
// state — a Mark counter, a beta token, a rule marker, an index entry,
// or (for matchers whose only derived state is the conflict set) a
// conflict-set instantiation — using a seeded RNG for reproducibility.
// It returns a description of the damage, or "" when there was nothing
// to corrupt. This is the fault-injection hook behind the corruption
// detection tests and psdb's audit demo; production code has no reason
// to call it.
func (s *System) InjectCorruption(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var desc string
	s.eng.WithMaintenanceLock(func() {
		if c, ok := s.matcher.(audit.Corrupter); ok {
			desc = c.CorruptDerived(rng)
		}
		if desc == "" {
			desc = audit.CorruptConflictSet(s.matcher.ConflictSet(), rng)
		}
	})
	return desc
}
