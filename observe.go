package prodsys

// This file is the observability surface of the system: execution
// tracing with per-rule profiling (System.Trace), typed operation
// counters (System.Metrics), and context-aware run entry points.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"prodsys/internal/joiner"
	"prodsys/internal/metrics"
	"prodsys/internal/trace"
)

// Re-exported planner types. The concrete implementations live in
// internal/joiner; these aliases make System.Plan's tree usable
// without importing an internal package.
type (
	// Plan is a compiled cost-based join order for one rule, with
	// estimated and actual cardinalities per step; obtain one with
	// System.Plan or System.Plans.
	Plan = joiner.Plan
	// PlanStep is one condition element's slot in a Plan.
	PlanStep = joiner.PlanStep
	// PlanAccess names a plan step's access path.
	PlanAccess = joiner.Access
)

// Re-exported tracing types. The concrete implementations live in
// internal/trace; these aliases make the returned values usable without
// importing an internal package.
type (
	// Tracer records structured execution events; obtain one with
	// System.Trace.
	Tracer = trace.Tracer
	// TraceEvent is one recorded event.
	TraceEvent = trace.Event
	// TraceKind enumerates the event kinds.
	TraceKind = trace.Kind
	// Profile aggregates a trace into per-rule and per-condition-element
	// figures.
	Profile = trace.Profile
	// RuleProfile is one rule's row in a Profile.
	RuleProfile = trace.RuleProfile
	// CEProfile is one condition element's row in a RuleProfile.
	CEProfile = trace.CEProfile
	// Explanation reconstructs a rule's last firing from the trace.
	Explanation = trace.Explanation
	// ExplainCE is one condition element's support in an Explanation.
	ExplainCE = trace.ExplainCE
)

// TraceOptions configures System.Trace.
type TraceOptions struct {
	// Capacity bounds the event ring buffer; zero means the default
	// (65536 events). On overflow the oldest events are dropped; the
	// profile aggregates are maintained at emit time and survive
	// overflow.
	Capacity int
}

// Trace starts (or restarts, with a fresh buffer) event recording and
// returns the system's tracer. Every component — storage maintenance,
// the active matcher, the conflict set, the lock manager, and both
// executors — emits through it. While no trace is active the emit
// points are single atomic-load checks that allocate nothing.
//
// Read the recording through the returned Tracer: Events() for the raw
// stream, Profile() for the per-rule table, Explain(rule) for the
// support of a rule's last firing, WriteJSONL / WriteChromeTrace for
// export. Call Stop on the tracer to pause recording; the recorded
// events remain readable.
func (s *System) Trace(opts TraceOptions) *Tracer {
	infos := make([]trace.RuleInfo, 0, len(s.set.Rules))
	for _, r := range s.set.Rules {
		ri := trace.RuleInfo{Name: r.Name, CEs: make([]trace.CEInfo, len(r.CEs))}
		for i, ce := range r.CEs {
			ri.CEs[i] = trace.CEInfo{Class: ce.Class, Negated: ce.Negated}
		}
		infos = append(infos, ri)
	}
	s.tracer.SetRules(infos)
	s.tracer.Start(trace.Options{Capacity: opts.Capacity})
	return s.tracer
}

// Tracer returns the system's tracer without changing its state: nil
// until the system is loaded, disabled until Trace is called.
func (s *System) Tracer() *Tracer { return s.tracer }

// IndexInfo describes one secondary index of a relation.
type IndexInfo struct {
	// Attr is the indexed attribute's name; Pos its position.
	Attr string
	Pos  int
	// Distinct counts the distinct live key values — the selectivity
	// input for cost-based planning.
	Distinct int
}

// RelationStorage describes the storage serving one WM relation.
type RelationStorage struct {
	// Name is the WM class name.
	Name string
	// Backend is the storage backend serving the relation.
	Backend Storage
	// Tuples is the live cardinality — for a sharded relation, the
	// aggregate across every shard.
	Tuples int
	// Shards is the relation's shard count; zero means unsharded.
	Shards int
	// Indexes lists the secondary indexes in attribute-position order.
	Indexes []IndexInfo
}

// StorageStats counts storage-engine operations.
type StorageStats struct {
	TuplesInserted   int64
	TuplesDeleted    int64
	TuplesScanned    int64
	IndexLookups     int64 // hash-index equality probes
	IndexRangeProbes int64 // ordered-index range probes
	InternHits       int64 // string payloads deduplicated at insert
	BatchInserts     int64 // bulk InsertBatch storage operations
	PagesRead        int64 // simulated I/O
	PagesWritten     int64 // simulated I/O

	// Relations describes each WM relation's backend, cardinality, and
	// indexes at snapshot time. It is a point-in-time catalog view, not
	// a counter: Snapshot.Delta keeps the newer snapshot's value, and
	// snapshots rebuilt from raw counter maps leave it empty.
	Relations []RelationStorage
}

// MatchStats counts match-maintenance operations.
type MatchStats struct {
	NodeActivations  int64
	TokensStored     int64
	TokensDeleted    int64
	JoinsComputed    int64
	PatternsStored   int64
	PatternsDeleted  int64
	PatternSearches  int64
	CondTuplesStored int64
	FalseDrops       int64
	CandidateChecks  int64
}

// ExecutionStats counts conflict-set and executor operations.
type ExecutionStats struct {
	Instantiations  int64
	Retractions     int64
	RuleFirings     int64
	LockWaits       int64
	LocksAcquired   int64
	TxnCommits      int64
	TxnAborts       int64
	Deadlocks       int64
	SerialOps       int64
	MaintenanceOps  int64
	ParallelBatches int64
}

// BatchStats counts set-oriented batch-pipeline operations.
type BatchStats struct {
	Deltas       int64 // batches applied set-at-a-time
	Tuples       int64 // tuples carried by those batches
	Propagations int64 // per-(class,direction) maintenance passes
}

// DurabilityStats counts write-ahead-log and recovery operations.
type DurabilityStats struct {
	TxnRetries     int64 // deadlock victims retried with backoff
	WALAppends     int64 // committed units (txns + batches) logged
	WALRecords     int64 // individual records written
	WALBytes       int64 // bytes appended to the log
	WALSyncs       int64 // fsyncs issued by the sync policy
	WALCheckpoints int64 // checkpoint compactions completed
	RecoveryTxns   int64 // committed units replayed at Load
	RecoveryOps    int64 // WM operations replayed at Load
	RecoveryTuples int64 // checkpoint tuples restored at Load
	RecoveryNanos  int64 // wall time spent in recovery replay
}

// ServerStats counts server front-end and WAL group-commit operations
// (internal/server + wal.SyncGroup).
type ServerStats struct {
	Admitted     int64 // requests admitted past admission control
	Rejected     int64 // requests shed with 429 (queue full)
	Drained      int64 // in-flight requests finished during drain
	QueueClients int64 // high-water distinct clients waiting in the fair queue
	GroupCommits int64 // group fsyncs, each covering ≥1 waiting commit
	GroupWaiters int64 // commits whose durability rode a group fsync
	ReadOnly     int64 // 1 after a WAL failure flipped the system read-only
}

// ReplicationStats counts WAL log-shipping operations — the apply side
// on a replica, the feed side on a primary (internal/replica; see
// docs/REPLICATION.md).
type ReplicationStats struct {
	TxnsApplied  int64 // committed units applied from the feed
	OpsApplied   int64 // WM operations those units carried
	Bytes        int64 // raw WAL bytes mirrored into the local log
	Snapshots    int64 // bootstrap snapshots restored
	EpochFollows int64 // primary checkpoints mirrored locally
	Reconnects   int64 // feed connections (re)established
	LagBytes     int64 // gauge: bytes behind the primary at last heartbeat
	FeedsServed  int64 // feed connections served (primary side)
	FeedFrames   int64 // frames shipped to replicas (primary side)
	Promotions   int64 // replica→primary promotions completed
	FencedWrites int64 // writes rejected by stale-epoch fencing
}

// ShardStats counts parallel match-scheduler operations (the sharded
// working-memory arc; see docs/SHARDING.md).
type ShardStats struct {
	Shards         int64 // configured shard space (high-water gauge)
	Maintains      int64 // per-shard maintenance/detection tasks executed
	Steals         int64 // tasks taken from another worker's queue
	CrossShardTxns int64 // deltas whose tuples spanned more than one shard
	Rebalances     int64 // oversized shard tasks split per class
}

// IntegrityStats counts audit, repair, and fault-containment
// operations.
type IntegrityStats struct {
	AuditRuns         int64 // audit passes (full or sampled)
	AuditRulesChecked int64 // rules examined across audits
	AuditDivergences  int64 // divergences detected
	AuditRepairs      int64 // divergences repaired
	MatcherRebuilds   int64 // rules (or whole matchers) rebuilt from WM
	PanicsContained   int64 // rule/maintenance panics absorbed
	TxnTimeouts       int64 // transactions aborted by the watchdog
}

// PlannerStats counts cost-based join-planning operations.
type PlannerStats struct {
	PlansBuilt        int64 // plans compiled (first build + rebuilds)
	PlanCacheHits     int64 // executions served by a cached plan
	PlanInvalidations int64 // plans discarded on stats drift
}

// CacheHitRate is the fraction of planned executions served from the
// plan cache.
func (p PlannerStats) CacheHitRate() float64 {
	total := p.PlansBuilt + p.PlanCacheHits
	if total == 0 {
		return 0
	}
	return float64(p.PlanCacheHits) / float64(total)
}

// Snapshot is a typed, immutable copy of the system's operation
// counters, grouped by subsystem. Counters holds every raw counter by
// name, including any not covered by the typed sections.
type Snapshot struct {
	Storage     StorageStats
	Match       MatchStats
	Planner     PlannerStats
	Execution   ExecutionStats
	Batch       BatchStats
	Durability  DurabilityStats
	Server      ServerStats
	Replication ReplicationStats
	Shard       ShardStats
	Integrity   IntegrityStats
	Counters    map[string]int64
}

// Metrics snapshots the operation counters accumulated so far, plus the
// per-relation storage description of the live catalog.
func (s *System) Metrics() Snapshot {
	raw := s.stats.Snapshot()
	m := make(map[string]int64, len(raw))
	for k, v := range raw {
		m[string(k)] = v
	}
	sn := newSnapshot(m)
	for _, name := range s.db.Names() {
		rel, err := s.db.Lookup(name)
		if err != nil {
			continue
		}
		st := rel.Stats()
		rs := RelationStorage{Name: name, Backend: Storage(st.Backend), Tuples: st.Tuples, Shards: st.Shards}
		for _, ix := range st.Indexes {
			rs.Indexes = append(rs.Indexes, IndexInfo{Attr: ix.Attr, Pos: ix.Pos, Distinct: ix.Distinct})
		}
		sn.Storage.Relations = append(sn.Storage.Relations, rs)
	}
	return sn
}

// CounterSet exposes the live counter bag the system increments — the
// hook the server front end uses to land its admission counters
// (server_admitted, server_rejected, server_drained) in the same
// Metrics() snapshot as everything else. Safe for concurrent use.
func (s *System) CounterSet() *metrics.Set { return s.stats }

// newSnapshot builds the typed sections from a raw counter map.
func newSnapshot(m map[string]int64) Snapshot {
	return Snapshot{
		Storage: StorageStats{
			TuplesInserted:   m["tuples_inserted"],
			TuplesDeleted:    m["tuples_deleted"],
			TuplesScanned:    m["tuples_scanned"],
			IndexLookups:     m["index_lookups"],
			IndexRangeProbes: m["index_range_probes"],
			InternHits:       m["intern_hits"],
			BatchInserts:     m["batch_inserts"],
			PagesRead:        m["pages_read"],
			PagesWritten:     m["pages_written"],
		},
		Match: MatchStats{
			NodeActivations:  m["node_activations"],
			TokensStored:     m["tokens_stored"],
			TokensDeleted:    m["tokens_deleted"],
			JoinsComputed:    m["joins_computed"],
			PatternsStored:   m["patterns_stored"],
			PatternsDeleted:  m["patterns_deleted"],
			PatternSearches:  m["pattern_searches"],
			CondTuplesStored: m["cond_tuples_stored"],
			FalseDrops:       m["false_drops"],
			CandidateChecks:  m["candidate_checks"],
		},
		Planner: PlannerStats{
			PlansBuilt:        m["plans_built"],
			PlanCacheHits:     m["plan_cache_hits"],
			PlanInvalidations: m["plan_invalidations"],
		},
		Execution: ExecutionStats{
			Instantiations:  m["instantiations"],
			Retractions:     m["retractions"],
			RuleFirings:     m["rule_firings"],
			LockWaits:       m["lock_waits"],
			LocksAcquired:   m["locks_acquired"],
			TxnCommits:      m["txn_commits"],
			TxnAborts:       m["txn_aborts"],
			Deadlocks:       m["deadlocks"],
			SerialOps:       m["serial_ops"],
			MaintenanceOps:  m["maintenance_ops"],
			ParallelBatches: m["parallel_batches"],
		},
		Batch: BatchStats{
			Deltas:       m["batch_deltas"],
			Tuples:       m["batch_tuples"],
			Propagations: m["batch_propagations"],
		},
		Durability: DurabilityStats{
			TxnRetries:     m["txn_retries"],
			WALAppends:     m["wal_appends"],
			WALRecords:     m["wal_records"],
			WALBytes:       m["wal_bytes"],
			WALSyncs:       m["wal_syncs"],
			WALCheckpoints: m["wal_checkpoints"],
			RecoveryTxns:   m["recovery_txns"],
			RecoveryOps:    m["recovery_ops"],
			RecoveryTuples: m["recovery_tuples"],
			RecoveryNanos:  m["recovery_ns"],
		},
		Server: ServerStats{
			Admitted:     m["server_admitted"],
			Rejected:     m["server_rejected"],
			Drained:      m["server_drained"],
			QueueClients: m["server_queue_clients"],
			GroupCommits: m["wal_group_commits"],
			GroupWaiters: m["wal_group_waiters"],
			ReadOnly:     m["read_only"],
		},
		Replication: ReplicationStats{
			TxnsApplied:  m["replica_txns_applied"],
			OpsApplied:   m["replica_ops_applied"],
			Bytes:        m["replica_bytes"],
			Snapshots:    m["replica_snapshots"],
			EpochFollows: m["replica_epoch_follows"],
			Reconnects:   m["replica_reconnects"],
			LagBytes:     m["replica_lag_bytes"],
			FeedsServed:  m["feeds_served"],
			FeedFrames:   m["feed_frames"],
			Promotions:   m["promotions"],
			FencedWrites: m["fenced_writes"],
		},
		Shard: ShardStats{
			Shards:         m["shards"],
			Maintains:      m["shard_maintains"],
			Steals:         m["shard_steals"],
			CrossShardTxns: m["cross_shard_txns"],
			Rebalances:     m["shard_rebalance"],
		},
		Integrity: IntegrityStats{
			AuditRuns:         m["audit_runs"],
			AuditRulesChecked: m["audit_rules_checked"],
			AuditDivergences:  m["audit_divergences"],
			AuditRepairs:      m["audit_repairs"],
			MatcherRebuilds:   m["matcher_rebuilds"],
			PanicsContained:   m["panics_contained"],
			TxnTimeouts:       m["txn_timeouts"],
		},
		Counters: m,
	}
}

// Delta returns this snapshot minus prev, counter by counter — the
// activity between two Metrics calls. Counters keeps every key present
// in either snapshot (zero deltas included for keys present in both).
// Storage.Relations, a point-in-time catalog view rather than a
// counter, is carried over from the newer snapshot unchanged.
func (sn Snapshot) Delta(prev Snapshot) Snapshot {
	m := make(map[string]int64, len(sn.Counters))
	for k, v := range sn.Counters {
		m[k] = v - prev.Counters[k]
	}
	for k, v := range prev.Counters {
		if _, seen := sn.Counters[k]; !seen {
			m[k] = -v
		}
	}
	out := newSnapshot(m)
	out.Storage.Relations = sn.Storage.Relations
	return out
}

// String renders the snapshot for display: every raw counter in sorted
// order, then one line per WM relation describing its storage backend,
// cardinality, and indexes (when the snapshot carries the catalog
// view). This replaces formatting the deprecated Stats() map.
func (sn Snapshot) String() string {
	keys := make([]string, 0, len(sn.Counters))
	for k := range sn.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-24s %d\n", k, sn.Counters[k])
	}
	for _, rs := range sn.Storage.Relations {
		fmt.Fprintf(&b, "storage/%-16s backend=%s tuples=%d", rs.Name, rs.Backend, rs.Tuples)
		if rs.Shards > 1 {
			fmt.Fprintf(&b, " shards=%d", rs.Shards)
		}
		for _, ix := range rs.Indexes {
			fmt.Fprintf(&b, " ix(%s)=%d", ix.Attr, ix.Distinct)
		}
		b.WriteByte('\n')
	}
	if sv := sn.Server; sv.Admitted|sv.Rejected|sv.Drained|sv.GroupCommits|sv.GroupWaiters|sv.ReadOnly != 0 {
		fmt.Fprintf(&b, "server admitted=%d rejected=%d drained=%d group_commits=%d group_waiters=%d read_only=%d\n",
			sv.Admitted, sv.Rejected, sv.Drained, sv.GroupCommits, sv.GroupWaiters, sv.ReadOnly)
	}
	if rp := sn.Replication; rp.TxnsApplied|rp.Bytes|rp.Snapshots|rp.FeedsServed|rp.Promotions|rp.FencedWrites != 0 {
		fmt.Fprintf(&b, "replication txns=%d ops=%d bytes=%d snapshots=%d lag_bytes=%d feeds=%d frames=%d promotions=%d fenced=%d\n",
			rp.TxnsApplied, rp.OpsApplied, rp.Bytes, rp.Snapshots, rp.LagBytes, rp.FeedsServed, rp.FeedFrames, rp.Promotions, rp.FencedWrites)
	}
	if sh := sn.Shard; sh.Shards|sh.Maintains|sh.Steals|sh.CrossShardTxns|sh.Rebalances != 0 {
		fmt.Fprintf(&b, "shard shards=%d maintains=%d steals=%d cross_shard_txns=%d rebalances=%d\n",
			sh.Shards, sh.Maintains, sh.Steals, sh.CrossShardTxns, sh.Rebalances)
	}
	return b.String()
}

// Plan returns the active plan for the named rule: the cached plan
// with the most executions (so its actual cardinalities are the
// best-populated), or a freshly built full-derivation plan when the
// rule has not been planned yet. Requires the default PlannerCost;
// under PlannerFixed it returns ErrNoPlanner.
func (s *System) Plan(rule string) (*Plan, error) {
	plans, err := s.Plans(rule)
	if err != nil {
		return nil, err
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.Execs() > best.Execs() {
			best = p
		}
	}
	return best, nil
}

// Plans returns every compiled plan for the named rule — one per delta
// class the matcher has seeded evaluations from, plus the
// full-derivation plan (built on demand, so the slice is never empty).
// Plans are live: their actual cardinalities keep accumulating.
func (s *System) Plans(rule string) ([]*Plan, error) {
	if s.planner == nil {
		return nil, fmt.Errorf("prodsys: %w (Options.Planner == PlannerFixed)", ErrNoPlanner)
	}
	r, ok := s.set.RuleByName(rule)
	if !ok {
		return nil, fmt.Errorf("prodsys: %w %q", ErrUnknownRule, rule)
	}
	s.planner.Plan(r, -1) // ensure at least the full-derivation plan exists
	return s.planner.Plans(r), nil
}

// planText renders every plan of the named rule for Tracer.Explain
// ("" when the planner is disabled or the rule unknown).
func (s *System) planText(rule string) string {
	if s.planner == nil {
		return ""
	}
	r, ok := s.set.RuleByName(rule)
	if !ok {
		return ""
	}
	plans := s.planner.Plans(r)
	if len(plans) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range plans {
		b.WriteString(p.String())
	}
	return b.String()
}

// RunContext is Run honoring ctx: cancellation is observed between
// recognize-act cycles, so a fired action always completes its
// maintenance before the run stops with ctx.Err().
func (s *System) RunContext(ctx context.Context) (Result, error) {
	r, err := s.eng.RunSerialContext(ctx)
	return Result(r), err
}

// RunConcurrentContext is RunConcurrent honoring ctx: cancellation is
// observed between transaction rounds and before each transaction
// acquires its locks; in-flight transactions complete or abort
// normally.
func (s *System) RunConcurrentContext(ctx context.Context) (Result, error) {
	r, err := s.eng.RunConcurrentContext(ctx)
	return Result(r), err
}
